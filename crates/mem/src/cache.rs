//! Set-associative write-back cache timing model.

use regshare_stats::Ratio;
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (a power of two).
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `assoc × line` frames, or non-power-of-two sets/line).
    pub fn num_sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let frames = self.size_bytes / self.line_bytes;
        assert!(
            frames > 0 && frames.is_multiple_of(self.assoc),
            "cache geometry inconsistent: {} bytes / {}B lines / {} ways",
            self.size_bytes,
            self.line_bytes,
            self.assoc
        );
        let sets = frames / self.assoc;
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        sets
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// A set-associative, write-allocate, write-back cache with true LRU.
///
/// This is a timing/occupancy model: it tracks which line addresses are
/// resident, not their contents.
///
/// # Examples
///
/// ```
/// use regshare_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new("l1d", CacheConfig {
///     size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1,
/// });
/// assert!(!c.access(0x40, false)); // cold miss
/// assert!(c.access(0x40, false));  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stamp: u64,
    hits: Ratio,
    writebacks: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::num_sets`]).
    pub fn new(name: impl Into<String>, config: CacheConfig) -> Self {
        let sets = vec![vec![Line::default(); config.assoc]; config.num_sets()];
        Cache {
            config,
            sets,
            stamp: 0,
            hits: Ratio::new(name),
            writebacks: 0,
        }
    }

    #[inline]
    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let set = (line as usize) & (self.sets.len() - 1);
        (set, line)
    }

    /// Looks up `addr`; on a miss the line is filled (allocated). Returns
    /// whether the access hit.
    ///
    /// `is_write` marks the line dirty; evicting a dirty line counts a
    /// writeback.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.stamp += 1;
        let (set_idx, tag) = self.index_tag(addr);
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.stamp;
            line.dirty |= is_write;
            self.hits.record(true);
            return true;
        }
        self.hits.record(false);
        self.fill_line(set_idx, tag, is_write);
        false
    }

    /// Checks residency without updating any state (probe).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index_tag(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Inserts the line containing `addr` without counting a demand access
    /// (used for prefetch fills). Returns `true` if the line was newly
    /// installed.
    pub fn fill(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let (set_idx, tag) = self.index_tag(addr);
        if self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag) {
            return false;
        }
        self.fill_line(set_idx, tag, false);
        true
    }

    fn fill_line(&mut self, set_idx: usize, tag: u64, dirty: bool) {
        let stamp = self.stamp;
        let set = &mut self.sets[set_idx];
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("cache sets are never empty");
        if victim.valid && victim.dirty {
            self.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty,
            lru: stamp,
        };
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u32 {
        self.config.latency
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit-rate statistics.
    pub fn hit_ratio(&self) -> &Ratio {
        &self.hits
    }

    /// Number of dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64B lines.
        Cache::new(
            "t",
            CacheConfig {
                size_bytes: 256,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
            },
        )
    }

    #[test]
    fn geometry_computation() {
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        };
        assert_eq!(c.num_sets(), 256);
    }

    #[test]
    #[should_panic(expected = "geometry inconsistent")]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 100,
            assoc: 3,
            line_bytes: 64,
            latency: 1,
        }
        .num_sets();
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false)); // same line
        assert!(!c.access(64, false)); // next line, different set
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with (line index % 2 == 0): addresses 0, 128, 256...
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // touch 0 again; 128 is now LRU
        c.access(256, false); // evicts 128
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(128, false);
        c.access(256, false); // evicts 0 (dirty)
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn prefetch_fill_does_not_count_as_demand_access() {
        let mut c = tiny();
        assert!(c.fill(0));
        assert!(!c.fill(0)); // already resident
        assert_eq!(c.hit_ratio().total(), 0);
        assert!(c.access(0, false)); // demand access now hits
    }

    #[test]
    fn hit_ratio_tracks_accesses() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.hit_ratio().hits(), 1);
        assert_eq!(c.hit_ratio().total(), 2);
    }
}
