//! A timing wheel for in-flight completions.
//!
//! Replaces the `BTreeMap<cycle, Vec<seq>>` the writeback stage used to
//! carry scheduled completions: every issue did an O(log n) ordered-map
//! insert and every cycle paid a lookup/remove even when nothing
//! completed. The wheel is a power-of-two ring of buckets indexed by
//! `cycle & mask` — O(1) schedule and O(1) drain — and grows itself when
//! an operation's latency exceeds the current horizon (DRAM round trips
//! on a cold TLB can reach hundreds of cycles).

/// Ring buffer of `(completion cycle, sequence number)` buckets.
///
/// # Examples
///
/// ```
/// use regshare_sim::CompletionWheel;
///
/// let mut wheel = CompletionWheel::new();
/// wheel.schedule(10, 3);
/// wheel.schedule(12, 4);
/// assert_eq!(wheel.take(10), [3]);
/// assert!(wheel.take(11).is_empty());
/// assert_eq!(wheel.take(12), [4]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CompletionWheel {
    /// `slots[cycle & mask]` holds everything completing at `cycle`; the
    /// cycle is stored alongside each entry so the ring can re-bucket
    /// itself on growth.
    slots: Vec<Vec<(u64, u64)>>,
    mask: u64,
    /// Drained output vectors recycled across cycles so the steady state
    /// allocates nothing (buckets themselves are cleared in place and
    /// keep their capacity).
    spare: Vec<Vec<u64>>,
    len: usize,
}

/// Covers every pipelined FU latency and a cold DRAM + TLB-walk round
/// trip; only pathological memory configurations force growth.
const INITIAL_SLOTS: usize = 512;

impl CompletionWheel {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        CompletionWheel {
            slots: vec![Vec::new(); INITIAL_SLOTS],
            mask: INITIAL_SLOTS as u64 - 1,
            spare: Vec::new(),
            len: 0,
        }
    }

    /// Buckets start with room for a typical completion burst. Sizing
    /// every bucket for the worst case (ROB capacity) would spread the
    /// ring over megabytes and turn each schedule into a cache miss;
    /// instead the rare oversized burst grows its bucket once — during
    /// warmup in practice — and the capacity sticks from then on.
    const BUCKET_BURST: usize = 8;

    /// A wheel whose drain vector is pre-sized for `bound` simultaneous
    /// completions (no single cycle can complete more micro-ops than the
    /// machine holds in flight, so `bound` = ROB capacity suffices) and
    /// whose buckets hold [`CompletionWheel::BUCKET_BURST`] entries
    /// before their one-time growth.
    pub fn with_in_flight_bound(bound: usize) -> Self {
        let mut slots = Vec::with_capacity(INITIAL_SLOTS);
        slots.resize_with(INITIAL_SLOTS, || Vec::with_capacity(Self::BUCKET_BURST));
        CompletionWheel {
            slots,
            mask: INITIAL_SLOTS as u64 - 1,
            spare: vec![Vec::with_capacity(bound)],
            len: 0,
        }
    }

    /// Number of scheduled completions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `seq` to complete at `cycle`. Entries may land further
    /// out than the ring is long — [`CompletionWheel::take`] matches on
    /// the stored cycle, so a shared bucket is a slow path, never a
    /// correctness hazard — but an occupied bucket from a different
    /// cycle triggers growth to keep buckets homogeneous.
    pub fn schedule(&mut self, cycle: u64, seq: u64) {
        let bucket = &mut self.slots[(cycle & self.mask) as usize];
        if let Some(&(resident, _)) = bucket.first() {
            if resident != cycle {
                self.grow(cycle);
                return self.schedule(cycle, seq);
            }
        }
        bucket.push((cycle, seq));
        self.len += 1;
    }

    /// Removes and returns every sequence number completing at exactly
    /// `cycle`, in schedule order. Entries for a later lap of the ring
    /// stay put. Return the vector via [`CompletionWheel::recycle`] to
    /// avoid reallocating a bucket next cycle.
    pub fn take(&mut self, cycle: u64) -> Vec<u64> {
        let bucket = &mut self.slots[(cycle & self.mask) as usize];
        let mut out = self.spare.pop().unwrap_or_default();
        if bucket.is_empty() {
            return out;
        }
        if bucket.iter().all(|&(c, _)| c == cycle) {
            self.len -= bucket.len();
            out.extend(bucket.iter().map(|&(_, seq)| seq));
            bucket.clear();
        } else {
            let before = bucket.len();
            bucket.retain(|&(c, seq)| {
                if c == cycle {
                    out.push(seq);
                    false
                } else {
                    true
                }
            });
            self.len -= before - bucket.len();
        }
        out
    }

    /// Returns a drained vector's storage to the wheel for reuse.
    pub fn recycle(&mut self, mut v: Vec<u64>) {
        if self.spare.len() < 4 {
            v.clear();
            self.spare.push(v);
        }
    }

    /// Doubles the ring until `cycle` no longer collides with any
    /// resident bucket, re-bucketing everything in flight.
    fn grow(&mut self, cycle: u64) {
        let mut entries: Vec<(u64, u64)> = Vec::with_capacity(self.len + 1);
        for bucket in &mut self.slots {
            entries.append(bucket);
        }
        let mut size = self.slots.len();
        loop {
            size *= 2;
            let mask = size as u64 - 1;
            let collides = |c: u64| entries.iter().any(|&(e, _)| e != c && e & mask == c & mask);
            if !collides(cycle) && entries.iter().all(|&(e, _)| !collides(e)) {
                break;
            }
        }
        self.slots = vec![Vec::new(); size];
        self.mask = size as u64 - 1;
        self.len = 0;
        for (c, s) in entries {
            self.schedule(c, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_and_drains_in_order() {
        let mut w = CompletionWheel::new();
        w.schedule(5, 1);
        w.schedule(5, 9);
        w.schedule(5, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w.take(5), [1, 9, 2]);
        assert!(w.is_empty());
    }

    #[test]
    fn distant_cycles_force_growth_without_losing_entries() {
        let mut w = CompletionWheel::new();
        w.schedule(1, 10);
        // Same bucket index modulo the initial size, different cycle.
        w.schedule(1 + INITIAL_SLOTS as u64, 11);
        w.schedule(1 + 5 * INITIAL_SLOTS as u64, 12);
        assert_eq!(w.take(1), [10]);
        assert_eq!(w.take(1 + INITIAL_SLOTS as u64), [11]);
        assert_eq!(w.take(1 + 5 * INITIAL_SLOTS as u64), [12]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_entries_do_not_complete_a_lap_early() {
        let mut w = CompletionWheel::new();
        // Lands in the bucket take(3) will inspect, but a full lap out.
        w.schedule(3 + INITIAL_SLOTS as u64, 20);
        assert!(w.take(3).is_empty());
        assert_eq!(w.len(), 1);
        assert_eq!(w.take(3 + INITIAL_SLOTS as u64), [20]);
    }

    #[test]
    fn shared_bucket_is_split_by_cycle() {
        let mut w = CompletionWheel::new();
        w.schedule(7 + INITIAL_SLOTS as u64, 31);
        // Same bucket, earlier cycle: schedule grows to keep buckets
        // homogeneous, but both entries must still drain correctly.
        w.schedule(7, 30);
        assert_eq!(w.take(7), [30]);
        assert_eq!(w.take(7 + INITIAL_SLOTS as u64), [31]);
        assert!(w.is_empty());
    }

    #[test]
    fn recycle_feeds_take() {
        let mut w = CompletionWheel::new();
        let v = w.take(0);
        assert!(v.is_empty());
        w.recycle(v);
        w.schedule(3, 7);
        assert_eq!(w.take(3), [7]);
    }
}
