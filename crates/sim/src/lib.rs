#![warn(missing_docs)]

//! Execute-driven, cycle-level out-of-order core simulator.
//!
//! This crate is the substrate the paper's evaluation runs on — the role
//! gem5's O3 model plays in the original work. It models a modern
//! out-of-order core at the level of detail register-renaming research
//! needs:
//!
//! * 3-wide fetch/decode/rename/commit, 128-entry ROB, 40-entry issue
//!   queue with `(physical register, version)` wakeup tags, split
//!   load/store queues with store-to-load forwarding (Table I defaults in
//!   [`SimConfig`]).
//! * **Execute-driven speculation**: fetch follows *predicted* PCs through
//!   the real program image, wrong-path instructions are renamed, issued
//!   and executed against speculative register state, and mis-speculation
//!   recovery rolls everything back — including the proposed scheme's
//!   shadow-cell recover commands, which are charged extra redirect
//!   cycles.
//! * A gshare + BTB + return-address-stack front end, the
//!   [`regshare_mem`] cache/TLB/DRAM timing models, and per-class
//!   functional-unit pools.
//! * **Value-carrying execution**: operands are read from the
//!   [`regshare_core::RegFile`] (shadow cells included), so physical
//!   register sharing is verified for correctness, not just counted. With
//!   [`SimConfig::check_oracle`] enabled the simulator steps a functional
//!   [`regshare_isa::Machine`] at every commit and fails loudly on any
//!   divergence.
//! * Precise exceptions: injected page faults are detected at execute,
//!   deferred to commit, and recovered exactly as §IV-B describes.
//!
//! # Examples
//!
//! ```
//! use regshare_isa::{Asm, reg};
//! use regshare_sim::{Pipeline, SimConfig};
//! use regshare_core::{BaselineRenamer, Renamer, RenamerConfig};
//!
//! let mut a = Asm::new();
//! a.li(reg::x(1), 7);
//! a.mul(reg::x(1), reg::x(1), reg::x(1));
//! a.halt();
//! let program = a.assemble();
//!
//! let renamer = BaselineRenamer::new(RenamerConfig::baseline(64));
//! let mut sim = Pipeline::new(program, Box::new(renamer), SimConfig::default());
//! let report = sim.run().unwrap();
//! assert_eq!(report.committed_instructions, 3);
//! ```

mod bpred;
mod cancel;
mod config;
mod core_state;
mod errors;
mod fu;
mod inject;
mod lsq;
mod pipeline;
mod policy;
mod profile;
mod recovery;
mod report;
mod rob;
mod sampled;
mod scoreboard;
mod stages;
mod warm;
mod wheel;

pub use bpred::{BranchPredictor, BranchPredictorConfig};
pub use cancel::{CancelToken, CANCEL_CHECK_INTERVAL};
pub use config::{FetchPolicyKind, FuConfig, IssuePolicyKind, RecoveryPolicyKind, SimConfig};
pub use errors::{HeadSnapshot, PipelineSnapshot, SimError, TraceEvent, TraceStage};
pub use fu::FuPool;
pub use inject::{InjectEvent, InjectKind, InjectSchedule, InjectStats};
pub use lsq::{LoadStoreQueue, LsqError, StoreSearch};
pub use pipeline::Pipeline;
pub use policy::{
    CheckpointWalk, FetchPolicy, IcountFetch, IssueSelect, OldestFirst, RecoveryPolicy,
    RoundRobinFetch, SquashAll, YoungestFirst,
};
pub use profile::{StageProfile, StageSlot, StageTimer, NUM_STAGE_SLOTS, STAGE_SLOT_NAMES};
pub use report::SimReport;
pub use sampled::{
    run_window, sample_windows, window_specs, SampledConfig, SampledReport, WindowJob,
    WindowResult, WindowSpec, DEFAULT_BATCH, DEFAULT_LEAD,
};
pub use scoreboard::Scoreboard;
pub use warm::{Checkpoint, FunctionalWarmer, MemWarm, Warmable};
pub use wheel::CompletionWheel;
