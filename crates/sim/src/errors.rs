//! Structured simulation errors, diagnostic snapshots, and the optional
//! cycle-trace event types.

use crate::LsqError;
use std::fmt;

/// Errors a simulation can end with. Every variant that arises from a
/// live pipeline carries a [`PipelineSnapshot`] taken at the failure, so
/// a bare `Display` of the error is already a usable diagnostic dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The lockstep functional oracle disagreed with a committed
    /// micro-op — a correctness bug in the timing model or renamer.
    OracleMismatch {
        /// Simulated cycle of the divergence.
        cycle: u64,
        /// What went wrong.
        detail: String,
        /// Pipeline state at the divergence.
        snapshot: Box<PipelineSnapshot>,
    },
    /// `max_cycles` elapsed before the program finished.
    CycleLimit {
        /// The limit that was hit.
        cycles: u64,
    },
    /// An external supervisor cancelled the run through a
    /// [`crate::CancelToken`] (deadline expiry, shutdown). The program
    /// had not finished; no partial results are reported.
    Cancelled {
        /// Simulated cycle at which the cancellation was observed.
        cycle: u64,
    },
    /// No instruction committed for a long time with work in flight.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Sequence number stuck at the head of the ROB.
        head_seq: Option<u64>,
        /// Pipeline state at the stall, including the stuck head's
        /// operand-readiness — the forward-progress watchdog's dump.
        snapshot: Box<PipelineSnapshot>,
    },
    /// An invariant audit found corrupted bookkeeping (renamer free
    /// list / PRT / map table, or pipeline IQ/ROB/wakeup state).
    Invariant {
        /// Cycle of the failed audit.
        cycle: u64,
        /// Which invariant was violated.
        what: String,
        /// Pipeline state at the violation.
        snapshot: Box<PipelineSnapshot>,
    },
    /// The load/store queue rejected an operation as malformed.
    Lsq {
        /// Cycle of the rejected operation.
        cycle: u64,
        /// The queue's own description of the problem.
        error: LsqError,
        /// Pipeline state at the failure.
        snapshot: Box<PipelineSnapshot>,
    },
    /// The configuration was rejected by [`crate::SimConfig::validate`]
    /// before any cycle was simulated (zero widths, thread count out of
    /// range, structures too small for the thread partitioning).
    Config {
        /// Which parameter was inconsistent, and why.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OracleMismatch {
                cycle,
                detail,
                snapshot,
            } => {
                write!(f, "oracle mismatch at cycle {cycle}: {detail}\n{snapshot}")
            }
            SimError::CycleLimit { cycles } => write!(f, "cycle limit of {cycles} reached"),
            SimError::Cancelled { cycle } => {
                write!(f, "run cancelled by supervisor at cycle {cycle}")
            }
            SimError::Deadlock {
                cycle,
                head_seq,
                snapshot,
            } => {
                write!(
                    f,
                    "no commit progress by cycle {cycle} (head seq {head_seq:?})\n{snapshot}"
                )
            }
            SimError::Invariant {
                cycle,
                what,
                snapshot,
            } => {
                write!(
                    f,
                    "invariant violation at cycle {cycle}: {what}\n{snapshot}"
                )
            }
            SimError::Lsq {
                cycle,
                error,
                snapshot,
            } => {
                write!(
                    f,
                    "load/store queue error at cycle {cycle}: {error}\n{snapshot}"
                )
            }
            SimError::Config { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A point-in-time summary of pipeline state, attached to every
/// structured [`SimError`] and printable on its own. Queue depths plus a
/// detailed view of the ROB head — the micro-op whose stall or
/// misbehaviour usually explains the failure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineSnapshot {
    /// Cycle the snapshot was taken on.
    pub cycle: u64,
    /// Last cycle any micro-op committed.
    pub last_commit_cycle: u64,
    /// Next fetch PC (`None`: fetch is waiting for a redirect).
    pub fetch_pc: Option<u64>,
    /// Cycle until which fetch is stalled (redirect/exception penalty).
    pub fetch_stall_until: u64,
    /// Fetch-queue depth.
    pub fetch_queue: usize,
    /// Decode-queue depth.
    pub decode_queue: usize,
    /// Reorder-buffer occupancy.
    pub rob: usize,
    /// Issue-queue occupancy (ready + waiting).
    pub iq: usize,
    /// Operand-ready, unissued micro-ops.
    pub ready: usize,
    /// In-flight unresolved branches.
    pub unresolved_branches: usize,
    /// Load-queue occupancy.
    pub lsq_loads: usize,
    /// Store-queue occupancy.
    pub lsq_stores: usize,
    /// Free integer physical registers.
    pub free_int: usize,
    /// Free floating-point physical registers.
    pub free_fp: usize,
    /// The oldest in-flight micro-op, if any.
    pub head: Option<HeadSnapshot>,
}

/// The ROB head's state inside a [`PipelineSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeadSnapshot {
    /// Sequence number.
    pub seq: u64,
    /// Instruction index.
    pub pc: u64,
    /// Disassembly of the instruction.
    pub inst: String,
    /// Micro-op kind (`Main` / `RepairMove`).
    pub kind: String,
    /// Selected for execution.
    pub issued: bool,
    /// Result written back.
    pub done: bool,
    /// Busy source operands still being waited on.
    pub pending_srcs: u8,
    /// Present in the ready queue.
    pub in_ready_q: bool,
    /// Parked in a scoreboard waiter list.
    pub has_waiter: bool,
    /// Per-source scoreboard readiness.
    pub srcs_ready: Vec<bool>,
    /// Marked for a precise exception at commit.
    pub exception: bool,
}

impl fmt::Display for PipelineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline snapshot at cycle {} (last commit at cycle {}):",
            self.cycle, self.last_commit_cycle
        )?;
        writeln!(
            f,
            "  fetch pc {:?}, stalled until {}, fetchq {}, decodeq {}",
            self.fetch_pc, self.fetch_stall_until, self.fetch_queue, self.decode_queue
        )?;
        writeln!(
            f,
            "  rob {}, iq {} ({} ready), unresolved branches {}, lsq {} loads / {} stores",
            self.rob,
            self.iq,
            self.ready,
            self.unresolved_branches,
            self.lsq_loads,
            self.lsq_stores
        )?;
        write!(f, "  free regs: {} int, {} fp", self.free_int, self.free_fp)?;
        if let Some(h) = &self.head {
            write!(
                f,
                "\n  head: seq {} pc {} `{}` [{}] issued={} done={} pending_srcs={} \
                 in_ready_q={} has_waiter={} srcs_ready={:?} exception={}",
                h.seq,
                h.pc,
                h.inst,
                h.kind,
                h.issued,
                h.done,
                h.pending_srcs,
                h.in_ready_q,
                h.has_waiter,
                h.srcs_ready,
                h.exception
            )?;
        }
        Ok(())
    }
}

/// One pipeline-stage event from the optional cycle trace
/// ([`crate::SimConfig::trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event happened on.
    pub cycle: u64,
    /// Micro-op sequence number.
    pub seq: u64,
    /// Instruction index.
    pub pc: u64,
    /// Which stage the micro-op passed.
    pub stage: TraceStage,
}

/// Pipeline stage of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceStage {
    /// Renamed and inserted into the ROB/IQ.
    Dispatch,
    /// Selected for execution.
    Issue,
    /// Result written back and broadcast.
    Writeback,
    /// Retired in order.
    Commit,
}
