//! The out-of-order pipeline: fetch → decode → rename → issue → execute →
//! writeback → commit, with full mis-speculation recovery.

use crate::bpred::{BranchPredictor, Prediction};
use crate::inject::{InjectKind, InjectSchedule, InjectState, InjectStats};
use crate::{
    CompletionWheel, FuPool, LoadStoreQueue, LsqError, Scoreboard, SimConfig, SimReport,
    StoreSearch,
};
use regshare_core::{RegFile, Renamer, TaggedReg, UopKind};
use regshare_isa::exec::{self, Action};
use regshare_isa::{Inst, Machine, Memory, Opcode, Program, RegClass};
use regshare_mem::{DataAccess, MemoryHierarchy};
use regshare_stats::Sampler;
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

/// Errors a simulation can end with. Every variant that arises from a
/// live pipeline carries a [`PipelineSnapshot`] taken at the failure, so
/// a bare `Display` of the error is already a usable diagnostic dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The lockstep functional oracle disagreed with a committed
    /// micro-op — a correctness bug in the timing model or renamer.
    OracleMismatch {
        /// Simulated cycle of the divergence.
        cycle: u64,
        /// What went wrong.
        detail: String,
        /// Pipeline state at the divergence.
        snapshot: Box<PipelineSnapshot>,
    },
    /// `max_cycles` elapsed before the program finished.
    CycleLimit {
        /// The limit that was hit.
        cycles: u64,
    },
    /// No instruction committed for a long time with work in flight.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Sequence number stuck at the head of the ROB.
        head_seq: Option<u64>,
        /// Pipeline state at the stall, including the stuck head's
        /// operand-readiness — the forward-progress watchdog's dump.
        snapshot: Box<PipelineSnapshot>,
    },
    /// An invariant audit found corrupted bookkeeping (renamer free
    /// list / PRT / map table, or pipeline IQ/ROB/wakeup state).
    Invariant {
        /// Cycle of the failed audit.
        cycle: u64,
        /// Which invariant was violated.
        what: String,
        /// Pipeline state at the violation.
        snapshot: Box<PipelineSnapshot>,
    },
    /// The load/store queue rejected an operation as malformed.
    Lsq {
        /// Cycle of the rejected operation.
        cycle: u64,
        /// The queue's own description of the problem.
        error: LsqError,
        /// Pipeline state at the failure.
        snapshot: Box<PipelineSnapshot>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OracleMismatch {
                cycle,
                detail,
                snapshot,
            } => {
                write!(f, "oracle mismatch at cycle {cycle}: {detail}\n{snapshot}")
            }
            SimError::CycleLimit { cycles } => write!(f, "cycle limit of {cycles} reached"),
            SimError::Deadlock {
                cycle,
                head_seq,
                snapshot,
            } => {
                write!(
                    f,
                    "no commit progress by cycle {cycle} (head seq {head_seq:?})\n{snapshot}"
                )
            }
            SimError::Invariant {
                cycle,
                what,
                snapshot,
            } => {
                write!(
                    f,
                    "invariant violation at cycle {cycle}: {what}\n{snapshot}"
                )
            }
            SimError::Lsq {
                cycle,
                error,
                snapshot,
            } => {
                write!(
                    f,
                    "load/store queue error at cycle {cycle}: {error}\n{snapshot}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A point-in-time summary of pipeline state, attached to every
/// structured [`SimError`] and printable on its own. Queue depths plus a
/// detailed view of the ROB head — the micro-op whose stall or
/// misbehaviour usually explains the failure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineSnapshot {
    /// Cycle the snapshot was taken on.
    pub cycle: u64,
    /// Last cycle any micro-op committed.
    pub last_commit_cycle: u64,
    /// Next fetch PC (`None`: fetch is waiting for a redirect).
    pub fetch_pc: Option<u64>,
    /// Cycle until which fetch is stalled (redirect/exception penalty).
    pub fetch_stall_until: u64,
    /// Fetch-queue depth.
    pub fetch_queue: usize,
    /// Decode-queue depth.
    pub decode_queue: usize,
    /// Reorder-buffer occupancy.
    pub rob: usize,
    /// Issue-queue occupancy (ready + waiting).
    pub iq: usize,
    /// Operand-ready, unissued micro-ops.
    pub ready: usize,
    /// In-flight unresolved branches.
    pub unresolved_branches: usize,
    /// Load-queue occupancy.
    pub lsq_loads: usize,
    /// Store-queue occupancy.
    pub lsq_stores: usize,
    /// Free integer physical registers.
    pub free_int: usize,
    /// Free floating-point physical registers.
    pub free_fp: usize,
    /// The oldest in-flight micro-op, if any.
    pub head: Option<HeadSnapshot>,
}

/// The ROB head's state inside a [`PipelineSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeadSnapshot {
    /// Sequence number.
    pub seq: u64,
    /// Instruction index.
    pub pc: u64,
    /// Disassembly of the instruction.
    pub inst: String,
    /// Micro-op kind (`Main` / `RepairMove`).
    pub kind: String,
    /// Selected for execution.
    pub issued: bool,
    /// Result written back.
    pub done: bool,
    /// Busy source operands still being waited on.
    pub pending_srcs: u8,
    /// Present in the ready queue.
    pub in_ready_q: bool,
    /// Parked in a scoreboard waiter list.
    pub has_waiter: bool,
    /// Per-source scoreboard readiness.
    pub srcs_ready: Vec<bool>,
    /// Marked for a precise exception at commit.
    pub exception: bool,
}

impl fmt::Display for PipelineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline snapshot at cycle {} (last commit at cycle {}):",
            self.cycle, self.last_commit_cycle
        )?;
        writeln!(
            f,
            "  fetch pc {:?}, stalled until {}, fetchq {}, decodeq {}",
            self.fetch_pc, self.fetch_stall_until, self.fetch_queue, self.decode_queue
        )?;
        writeln!(
            f,
            "  rob {}, iq {} ({} ready), unresolved branches {}, lsq {} loads / {} stores",
            self.rob,
            self.iq,
            self.ready,
            self.unresolved_branches,
            self.lsq_loads,
            self.lsq_stores
        )?;
        write!(f, "  free regs: {} int, {} fp", self.free_int, self.free_fp)?;
        if let Some(h) = &self.head {
            write!(
                f,
                "\n  head: seq {} pc {} `{}` [{}] issued={} done={} pending_srcs={} \
                 in_ready_q={} has_waiter={} srcs_ready={:?} exception={}",
                h.seq,
                h.pc,
                h.inst,
                h.kind,
                h.issued,
                h.done,
                h.pending_srcs,
                h.in_ready_q,
                h.has_waiter,
                h.srcs_ready,
                h.exception
            )?;
        }
        Ok(())
    }
}

/// One pipeline-stage event from the optional cycle trace
/// ([`SimConfig::trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event happened on.
    pub cycle: u64,
    /// Micro-op sequence number.
    pub seq: u64,
    /// Instruction index.
    pub pc: u64,
    /// Which stage the micro-op passed.
    pub stage: TraceStage,
}

/// Pipeline stage of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceStage {
    /// Renamed and inserted into the ROB/IQ.
    Dispatch,
    /// Selected for execution.
    Issue,
    /// Result written back and broadcast.
    Writeback,
    /// Retired in order.
    Commit,
}

/// Ordered set of sequence numbers on a flat sorted vector. The issue
/// queue's ready list and the unresolved-branch set hold at most a few
/// dozen entries, where binary search plus a short `memmove` beats a
/// BTree on every operation and steady state never allocates.
#[derive(Debug, Clone, Default)]
struct SeqSet(Vec<u64>);

impl SeqSet {
    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn as_slice(&self) -> &[u64] {
        &self.0
    }

    fn first(&self) -> Option<u64> {
        self.0.first().copied()
    }

    fn contains(&self, seq: u64) -> bool {
        self.0.binary_search(&seq).is_ok()
    }

    fn insert(&mut self, seq: u64) {
        match self.0.last() {
            Some(&last) if last >= seq => {
                if let Err(i) = self.0.binary_search(&seq) {
                    self.0.insert(i, seq);
                }
            }
            // Dispatch inserts in program order: appending is the norm.
            _ => self.0.push(seq),
        }
    }

    fn remove(&mut self, seq: u64) -> bool {
        match self.0.binary_search(&seq) {
            Ok(i) => {
                self.0.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Drops every entry greater than `seq` (squash).
    fn retain_le(&mut self, seq: u64) {
        let keep = self.0.partition_point(|&s| s <= seq);
        self.0.truncate(keep);
    }
}

#[derive(Debug, Clone)]
struct Fetched {
    pc: u64,
    inst: Inst,
    pred: Option<Prediction>,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    pc: u64,
    inst: Inst,
    kind: UopKind,
    srcs: [Option<TaggedReg>; 3],
    dst: Option<TaggedReg>,
    dst2: Option<TaggedReg>,
    pred: Option<Prediction>,
    issued: bool,
    done: bool,
    /// Source tags still busy — the entry's not-ready counter in the
    /// wakeup network. The entry sits in the ready queue iff this is 0
    /// and it has not issued.
    pending_srcs: u8,
    exception: bool,
    result: Option<u64>,
    result2: Option<u64>,
    ea: Option<u64>,
    taken: Option<bool>,
    next_pc: u64,
}

/// The execute-driven out-of-order core.
///
/// Construct with a program, a boxed [`Renamer`] (baseline or proposed)
/// and a [`SimConfig`]; drive with [`Pipeline::run`].
///
/// See the crate-level docs for an end-to-end example.
pub struct Pipeline {
    config: SimConfig,
    program: Program,
    renamer: Box<dyn Renamer>,
    rf: [RegFile; 2],
    scoreboard: Scoreboard,
    mem_timing: MemoryHierarchy,
    memory: Memory,
    bpred: BranchPredictor,
    fus: FuPool,
    lsq: LoadStoreQueue,
    rob: VecDeque<RobEntry>,
    /// Operand-ready, unissued entries in sequence order — the select
    /// stage's input. Entries with busy sources are not here; they wait
    /// in the scoreboard's per-tag waiter lists until woken.
    ready_q: SeqSet,
    /// Occupied issue-queue entries (ready + waiting), for dispatch
    /// capacity accounting.
    iq_len: usize,
    /// Scratch buffers reused across cycles by writeback/issue.
    wake_scratch: Vec<u64>,
    cand_scratch: Vec<u64>,
    /// Sequence numbers of in-flight micro-ops carrying an unresolved
    /// branch opcode, in program order. The oldest entry is the
    /// speculation boundary the renamer is advanced to each cycle —
    /// maintained incrementally instead of scanning the ROB per cycle.
    unresolved_branches: SeqSet,
    fetch_pc: Option<u64>,
    fetch_queue: VecDeque<Fetched>,
    decode_queue: VecDeque<Fetched>,
    fetch_stall_until: u64,
    next_seq: u64,
    cycle: u64,
    completions: CompletionWheel,
    oracle: Option<Machine>,
    /// Armed fault-injection schedule, if any ([`Pipeline::set_inject`]).
    inject: Option<InjectState>,
    /// A recovery happened this cycle: run the full architectural diff
    /// against the oracle at the end of the recovery before resuming.
    pending_verify: bool,
    /// Invariant audits performed ([`SimConfig::audit_interval`]).
    audits: u64,
    halted: bool,
    committed_instructions: u64,
    committed_uops: u64,
    mispredicts: u64,
    exceptions: u64,
    shadow_recovers: u64,
    expensive_repairs: u64,
    rename_stall_cycles: u64,
    last_commit_cycle: u64,
    int_occupancy: Vec<Sampler>,
    fp_occupancy: Vec<Sampler>,
    trace: Vec<TraceEvent>,
    /// Host wall-clock time accumulated across `run` calls.
    wall_seconds: f64,
}

impl Pipeline {
    /// Creates a pipeline at the program entry with cold caches and
    /// predictors.
    pub fn new(program: Program, renamer: Box<dyn Renamer>, config: SimConfig) -> Self {
        let rf = [
            RegFile::new(renamer.banks(RegClass::Int)),
            RegFile::new(renamer.banks(RegClass::Fp)),
        ];
        let scoreboard =
            Scoreboard::new(rf[0].len(), rf[1].len(), renamer.max_version() as usize + 1);
        let mut mem_timing = MemoryHierarchy::new(config.mem);
        for addr in &config.inject_page_faults {
            mem_timing.tlb_mut().inject_fault(*addr);
        }
        let oracle = config.check_oracle.then(|| Machine::new(program.clone()));
        let int_occupancy = (0..renamer.banks(RegClass::Int).num_banks())
            .map(|k| Sampler::new(format!("int_bank{k}")))
            .collect();
        let fp_occupancy = (0..renamer.banks(RegClass::Fp).num_banks())
            .map(|k| Sampler::new(format!("fp_bank{k}")))
            .collect();
        let memory = program.data().clone();
        let entry = program.entry() as u64;
        Pipeline {
            bpred: BranchPredictor::new(config.bpred),
            fus: FuPool::new(&config),
            lsq: LoadStoreQueue::new(config.lq_entries, config.sq_entries),
            config,
            program,
            renamer,
            rf,
            scoreboard,
            mem_timing,
            memory,
            rob: VecDeque::new(),
            ready_q: SeqSet::default(),
            iq_len: 0,
            wake_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            unresolved_branches: SeqSet::default(),
            fetch_pc: Some(entry),
            fetch_queue: VecDeque::new(),
            decode_queue: VecDeque::new(),
            fetch_stall_until: 0,
            next_seq: 1,
            cycle: 0,
            completions: CompletionWheel::new(),
            oracle,
            inject: None,
            pending_verify: false,
            audits: 0,
            halted: false,
            committed_instructions: 0,
            committed_uops: 0,
            mispredicts: 0,
            exceptions: 0,
            shadow_recovers: 0,
            expensive_repairs: 0,
            rename_stall_cycles: 0,
            last_commit_cycle: 0,
            int_occupancy,
            fp_occupancy,
            trace: Vec::new(),
            wall_seconds: 0.0,
        }
    }

    fn trace_event(&mut self, seq: u64, pc: u64, stage: TraceStage) {
        if self.config.trace && self.trace.len() < 100_000 {
            self.trace.push(TraceEvent {
                cycle: self.cycle,
                seq,
                pc,
                stage,
            });
        }
    }

    /// Drains the recorded cycle trace (empty unless [`SimConfig::trace`]
    /// was set).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    // Sequence numbers are monotonic but not contiguous (squashes leave
    // gaps). Gaps only ever *remove* seqs, so `seq - front.seq` is an
    // upper bound on the index and exact whenever no squash gap sits
    // inside the window — the overwhelmingly common case. Probe that
    // guess first and fall back to a binary search after a squash.
    fn rob_index(&self, seq: u64) -> Option<usize> {
        let front = self.rob.front()?.seq;
        if seq < front {
            return None;
        }
        let guess = ((seq - front) as usize).min(self.rob.len() - 1);
        if self.rob[guess].seq == seq {
            return Some(guess);
        }
        self.rob.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    fn rob_entry(&self, seq: u64) -> Option<&RobEntry> {
        let idx = self.rob_index(seq)?;
        self.rob.get(idx)
    }

    fn read_operands(&self, srcs: &[Option<TaggedReg>; 3]) -> [u64; 3] {
        let mut ops = [0u64; 3];
        for (slot, tag) in ops.iter_mut().zip(srcs.iter()) {
            if let Some(t) = tag {
                *slot = self.rf[t.class.index()].read_version(t.preg, t.version);
            }
        }
        ops
    }

    // ---- diagnostics / fault injection ----

    /// Captures the current pipeline state for a diagnostic dump.
    pub fn snapshot(&self) -> PipelineSnapshot {
        let free = |class: RegClass| {
            let in_use: usize = self.renamer.in_use_per_bank(class).into_iter().sum();
            self.renamer.banks(class).total().saturating_sub(in_use)
        };
        let head = self.rob.front().map(|e| HeadSnapshot {
            seq: e.seq,
            pc: e.pc,
            inst: e.inst.to_string(),
            kind: format!("{:?}", e.kind),
            issued: e.issued,
            done: e.done,
            pending_srcs: e.pending_srcs,
            in_ready_q: self.ready_q.contains(e.seq),
            has_waiter: self.scoreboard.has_waiter(e.seq),
            srcs_ready: e
                .srcs
                .iter()
                .flatten()
                .map(|t| self.scoreboard.is_ready(*t))
                .collect(),
            exception: e.exception,
        });
        PipelineSnapshot {
            cycle: self.cycle,
            last_commit_cycle: self.last_commit_cycle,
            fetch_pc: self.fetch_pc,
            fetch_stall_until: self.fetch_stall_until,
            fetch_queue: self.fetch_queue.len(),
            decode_queue: self.decode_queue.len(),
            rob: self.rob.len(),
            iq: self.iq_len,
            ready: self.ready_q.as_slice().len(),
            unresolved_branches: self.unresolved_branches.as_slice().len(),
            lsq_loads: self.lsq.loads_len(),
            lsq_stores: self.lsq.stores_len(),
            free_int: free(RegClass::Int),
            free_fp: free(RegClass::Fp),
            head,
        }
    }

    fn corrupt_err(&self, what: impl Into<String>) -> SimError {
        SimError::Invariant {
            cycle: self.cycle,
            what: what.into(),
            snapshot: Box::new(self.snapshot()),
        }
    }

    fn lsq_err(&self, error: LsqError) -> SimError {
        SimError::Lsq {
            cycle: self.cycle,
            error,
            snapshot: Box::new(self.snapshot()),
        }
    }

    /// Arms a deterministic fault-injection schedule. Events fire at the
    /// first opportunity at or after their scheduled cycle; all are
    /// architecturally transparent, so a lockstep oracle must still see a
    /// divergence-free run.
    pub fn set_inject(&mut self, schedule: InjectSchedule) {
        self.inject = Some(InjectState::new(schedule));
    }

    /// Counts of injected events actually delivered so far.
    pub fn inject_stats(&self) -> InjectStats {
        self.inject.as_ref().map(|i| i.stats).unwrap_or_default()
    }

    /// Number of invariant audits performed so far.
    pub fn audits(&self) -> u64 {
        self.audits
    }

    /// Translates due schedule entries into armed one-shot flags and
    /// executes squash storms on the spot.
    fn poll_injections(&mut self) {
        let mut storms: Vec<u8> = Vec::new();
        {
            let Some(inj) = &mut self.inject else { return };
            while let Some(e) = inj.events.get(inj.next) {
                if e.cycle > self.cycle {
                    break;
                }
                inj.next += 1;
                match e.kind {
                    InjectKind::Interrupt => inj.pending_interrupt = true,
                    InjectKind::LoadFault => inj.armed_load_fault = true,
                    InjectKind::StoreFault => inj.armed_store_fault = true,
                    InjectKind::BranchFlip => inj.armed_flip = true,
                    InjectKind::SquashStorm => storms.push(e.pick),
                }
            }
        }
        for pick in storms {
            self.squash_storm(pick);
        }
    }

    /// Squashes everything younger than a completed in-flight micro-op,
    /// exactly as a resolving branch would, and refetches from its
    /// successor. Candidates are restricted to done, exception-free
    /// `Main` micro-ops so the cut point's `next_pc` is an
    /// architecturally valid resume address.
    fn squash_storm(&mut self, pick: u8) {
        let candidates: Vec<(u64, u64)> = self
            .rob
            .iter()
            .filter(|e| {
                e.kind == UopKind::Main && e.done && !e.exception && e.inst.opcode != Opcode::Halt
            })
            .map(|e| (e.seq, e.next_pc))
            .collect();
        if candidates.is_empty() {
            return;
        }
        let (seq, next_pc) = candidates[pick as usize % candidates.len()];
        let extra = self.squash_younger_than(seq);
        self.fetch_pc = Some(next_pc);
        self.fetch_stall_until = self
            .fetch_stall_until
            .max(self.cycle + self.config.mispredict_penalty as u64 + extra as u64);
        self.pending_verify = true;
        if let Some(inj) = &mut self.inject {
            inj.stats.squash_storms += 1;
        }
    }

    /// Delivers a pending asynchronous interrupt: flush the entire
    /// speculative window and refetch from the oldest unretired
    /// instruction. Runs after writeback so an interrupt armed by a
    /// misprediction (`interrupts_on_mispredict`) lands in the same cycle
    /// as the branch's own squash — nested recovery.
    fn deliver_pending_interrupt(&mut self) {
        if !self.inject.as_ref().is_some_and(|i| i.pending_interrupt) {
            return;
        }
        if let Some(inj) = &mut self.inject {
            inj.pending_interrupt = false;
        }
        // The precise resume point: the oldest in-flight instruction,
        // wherever it is in the pipe, else wherever fetch would go next.
        let resume = self
            .rob
            .front()
            .map(|e| e.pc)
            .or_else(|| self.decode_queue.front().map(|f| f.pc))
            .or_else(|| self.fetch_queue.front().map(|f| f.pc))
            .or(self.fetch_pc);
        let Some(resume) = resume else {
            return; // nothing in flight and nothing to fetch: no-op
        };
        let squash_seq = self
            .rob
            .front()
            .map(|e| e.seq.saturating_sub(1))
            .unwrap_or(self.next_seq);
        let extra = self.squash_younger_than(squash_seq);
        self.fetch_pc = Some(resume);
        self.fetch_stall_until = self
            .fetch_stall_until
            .max(self.cycle + self.config.exception_penalty as u64 + extra as u64);
        self.pending_verify = true;
        if let Some(inj) = &mut self.inject {
            inj.stats.interrupts += 1;
        }
    }

    /// One-shot consumption of an armed forced load fault.
    fn consume_armed_load_fault(&mut self) -> bool {
        match &mut self.inject {
            Some(inj) if inj.armed_load_fault => {
                inj.armed_load_fault = false;
                inj.stats.load_faults += 1;
                true
            }
            _ => false,
        }
    }

    /// One-shot consumption of an armed forced store fault.
    fn consume_armed_store_fault(&mut self) -> bool {
        match &mut self.inject {
            Some(inj) if inj.armed_store_fault => {
                inj.armed_store_fault = false;
                inj.stats.store_faults += 1;
                true
            }
            _ => false,
        }
    }

    /// If a recovery completed this cycle, diff the full architectural
    /// state (every register through the retirement map, plus memory)
    /// against the lockstep oracle. No-op without an oracle.
    fn check_recovery_boundary(&mut self) -> Result<(), SimError> {
        if !self.pending_verify {
            return Ok(());
        }
        self.pending_verify = false;
        self.verify_arch_state()
    }

    fn verify_arch_state(&self) -> Result<(), SimError> {
        let Some(oracle) = &self.oracle else {
            return Ok(());
        };
        if let Some(map) = self.renamer.arch_map() {
            for class in [RegClass::Int, RegClass::Fp] {
                for (r, tag) in map.iter_class(class) {
                    if r.is_zero() {
                        continue;
                    }
                    let got = self.rf[tag.class.index()].read_version(tag.preg, tag.version);
                    let want = oracle.reg_bits(r);
                    if got != want {
                        return Err(SimError::OracleMismatch {
                            cycle: self.cycle,
                            detail: format!(
                                "architectural state diff: {r} (mapped to {tag}) \
                                 is {got:#x}, oracle has {want:#x}"
                            ),
                            snapshot: Box::new(self.snapshot()),
                        });
                    }
                }
            }
        }
        if let Some((addr, got, want)) = self.memory.first_difference(oracle.memory()) {
            return Err(SimError::OracleMismatch {
                cycle: self.cycle,
                detail: format!("memory diff: byte {addr:#x} is {got:#x}, oracle has {want:#x}"),
                snapshot: Box::new(self.snapshot()),
            });
        }
        Ok(())
    }

    // ---- invariant audits ----

    /// Every [`SimConfig::audit_interval`] cycles, cross-check the
    /// renamer's bookkeeping (free list / PRT / map tables) and the
    /// pipeline's IQ/ROB/wakeup state against their invariants.
    fn audit_if_due(&mut self) -> Result<(), SimError> {
        let n = self.config.audit_interval;
        if n == 0 || self.cycle == 0 || !self.cycle.is_multiple_of(n) {
            return Ok(());
        }
        self.audits += 1;
        if let Err(what) = self.renamer.audit() {
            return Err(self.corrupt_err(format!("renamer audit: {what}")));
        }
        self.audit_pipeline()
    }

    fn audit_pipeline(&self) -> Result<(), SimError> {
        let max_version = self.renamer.max_version();
        let mut unissued = 0usize;
        let mut prev_seq = None;
        for e in &self.rob {
            if let Some(p) = prev_seq {
                if e.seq <= p {
                    return Err(
                        self.corrupt_err(format!("ROB order: seq {} follows seq {p}", e.seq))
                    );
                }
            }
            prev_seq = Some(e.seq);
            let busy = e
                .srcs
                .iter()
                .flatten()
                .filter(|t| !self.scoreboard.is_ready(**t))
                .count() as u8;
            if !e.issued {
                unissued += 1;
                if e.pending_srcs != busy {
                    return Err(self.corrupt_err(format!(
                        "seq {}: pending_srcs {} but {busy} busy source operand(s)",
                        e.seq, e.pending_srcs
                    )));
                }
                if (e.pending_srcs == 0) != self.ready_q.contains(e.seq) {
                    return Err(self.corrupt_err(format!(
                        "seq {}: ready-queue membership ({}) disagrees with pending_srcs {}",
                        e.seq,
                        self.ready_q.contains(e.seq),
                        e.pending_srcs
                    )));
                }
            } else if e.pending_srcs != 0 {
                return Err(self.corrupt_err(format!(
                    "seq {} issued with pending_srcs {}",
                    e.seq, e.pending_srcs
                )));
            }
            if e.done {
                for tag in [e.dst, e.dst2].into_iter().flatten() {
                    if !self.scoreboard.is_ready(tag) {
                        return Err(self.corrupt_err(format!(
                            "seq {} done but destination {tag} is still busy",
                            e.seq
                        )));
                    }
                }
            }
            for tag in e.srcs.iter().chain([e.dst, e.dst2].iter()).flatten() {
                if tag.version > max_version {
                    return Err(self.corrupt_err(format!(
                        "seq {}: tag {tag} version exceeds the counter maximum {max_version}",
                        e.seq
                    )));
                }
                let cells = self.renamer.banks(tag.class).shadow_cells_of(tag.preg);
                if tag.version > 0 && tag.version > cells {
                    return Err(self.corrupt_err(format!(
                        "seq {}: tag {tag} version has no backing shadow cell ({cells} available)",
                        e.seq
                    )));
                }
            }
        }
        if unissued != self.iq_len {
            return Err(self.corrupt_err(format!(
                "issue-queue occupancy {} but {unissued} unissued ROB entries",
                self.iq_len
            )));
        }
        for &seq in self.ready_q.as_slice() {
            match self.rob_entry(seq) {
                None => {
                    return Err(self.corrupt_err(format!(
                        "ready queue holds seq {seq} which is not in the ROB"
                    )));
                }
                Some(e) if e.issued => {
                    return Err(self.corrupt_err(format!("ready queue holds issued seq {seq}")));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    // ---- commit ----

    fn commit(&mut self) -> Result<(), SimError> {
        for _ in 0..self.config.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done {
                break;
            }
            if head.exception {
                let (seq, pc, ea) = (head.seq, head.pc, head.ea);
                self.take_exception(seq, pc, ea);
                break;
            }
            let Some(head) = self.rob.pop_front() else {
                break;
            };
            if head.kind == UopKind::Main && head.inst.opcode.is_store() {
                let (addr, width, value) = match self.lsq.commit_store(head.seq) {
                    Ok(committed) => committed,
                    Err(e) => return Err(self.lsq_err(e)),
                };
                self.memory.write(addr, value, width);
                self.mem_timing
                    .access_data(head.pc * 4, addr, true, self.cycle);
            }
            if head.kind == UopKind::Main && head.inst.opcode.is_load() {
                if let Err(e) = self.lsq.commit_load(head.seq) {
                    return Err(self.lsq_err(e));
                }
            }
            self.renamer.commit(head.seq);
            self.trace_event(head.seq, head.pc, TraceStage::Commit);
            self.committed_uops += 1;
            if head.kind == UopKind::Main {
                self.committed_instructions += 1;
                if let Err(detail) = self.check_oracle(&head) {
                    return Err(SimError::OracleMismatch {
                        cycle: self.cycle,
                        detail,
                        snapshot: Box::new(self.snapshot()),
                    });
                }
            }
            self.last_commit_cycle = self.cycle;
            if head.inst.opcode == Opcode::Halt && head.kind == UopKind::Main {
                self.halted = true;
                break;
            }
        }
        Ok(())
    }

    // Returns the divergence detail only; the caller wraps it into
    // `SimError::OracleMismatch` with a snapshot (the oracle is borrowed
    // mutably here, so the snapshot must be taken outside).
    fn check_oracle(&mut self, head: &RobEntry) -> Result<(), String> {
        let Some(oracle) = &mut self.oracle else {
            return Ok(());
        };
        let expected = oracle
            .step()
            .map_err(|e| format!("oracle failed at sim pc {}: {e}", head.pc))?
            .ok_or_else(|| format!("sim committed pc {} after oracle halted", head.pc))?;
        let mismatch = |what: &str, exp: String, got: String| {
            Err(format!(
                "{what} differs at pc {} ({}): oracle {exp}, sim {got}",
                head.pc, head.inst
            ))
        };
        if expected.pc != head.pc {
            return mismatch("pc", expected.pc.to_string(), head.pc.to_string());
        }
        if head.dst.is_some() && expected.wvalue != head.result {
            return mismatch(
                "destination value",
                format!("{:?}", expected.wvalue),
                format!("{:?}", head.result),
            );
        }
        if head.dst2.is_some() && expected.wvalue2 != head.result2 {
            return mismatch(
                "writeback value",
                format!("{:?}", expected.wvalue2),
                format!("{:?}", head.result2),
            );
        }
        if expected.ea != head.ea {
            return mismatch(
                "effective address",
                format!("{:?}", expected.ea),
                format!("{:?}", head.ea),
            );
        }
        if expected.taken != head.taken {
            return mismatch(
                "branch outcome",
                format!("{:?}", expected.taken),
                format!("{:?}", head.taken),
            );
        }
        Ok(())
    }

    fn squash_younger_than(&mut self, seq: u64) -> u32 {
        while matches!(self.rob.back(), Some(e) if e.seq > seq) {
            let Some(e) = self.rob.pop_back() else { break };
            if !e.issued {
                self.iq_len -= 1;
                if e.pending_srcs == 0 {
                    self.ready_q.remove(e.seq);
                }
            }
        }
        // Squashed consumers still parked in the wakeup network must not
        // be woken by surviving producers.
        self.scoreboard.drain_waiters_after(seq);
        self.unresolved_branches.retain_le(seq);
        self.lsq.squash_after(seq);
        self.fetch_queue.clear();
        self.decode_queue.clear();
        let outcome = self.renamer.squash_after(seq);
        let mut recovered = 0u32;
        for tag in outcome.recovers {
            if self.rf[tag.class.index()].recover(tag.preg, tag.version) {
                recovered += 1;
            }
        }
        self.shadow_recovers += recovered as u64;
        recovered.div_ceil(self.config.recover_bandwidth.max(1))
    }

    fn take_exception(&mut self, seq: u64, pc: u64, ea: Option<u64>) {
        // Flush the entire pipeline, including the faulting instruction
        // (it re-executes after the handler), and restore precise state.
        let extra = self.squash_younger_than(seq - 1);
        if let Some(addr) = ea {
            self.mem_timing.tlb_mut().take_fault(addr);
        }
        self.fetch_pc = Some(pc);
        self.fetch_stall_until = self.cycle + self.config.exception_penalty as u64 + extra as u64;
        self.exceptions += 1;
        self.pending_verify = true;
    }

    // ---- writeback ----

    /// Sets `tag` ready and delivers the wakeup to every consumer parked
    /// on it: each broadcast decrements the consumer's not-ready counter,
    /// and a counter reaching zero moves the entry to the ready queue.
    fn broadcast_ready(&mut self, tag: TaggedReg) -> Result<(), SimError> {
        let mut woken = std::mem::take(&mut self.wake_scratch);
        self.scoreboard.set_ready(tag, &mut woken);
        for i in 0..woken.len() {
            let seq = woken[i];
            // Waiters are drained on squash, so a woken seq must be a
            // live ROB entry still counting down busy sources.
            let mut problem = None;
            match self.rob_index(seq) {
                Some(idx) => {
                    let e = &mut self.rob[idx];
                    if e.pending_srcs == 0 {
                        problem = Some("woken with no pending source operands");
                    } else {
                        e.pending_srcs -= 1;
                        if e.pending_srcs == 0 {
                            self.ready_q.insert(seq);
                        }
                    }
                }
                None => problem = Some("a scoreboard waiter that is not in the ROB"),
            }
            if let Some(what) = problem {
                woken.clear();
                self.wake_scratch = woken;
                return Err(self.corrupt_err(format!("wakeup on {tag}: seq {seq} is {what}")));
            }
        }
        woken.clear();
        self.wake_scratch = woken;
        Ok(())
    }

    fn writeback(&mut self) -> Result<(), SimError> {
        let mut seqs = self.completions.take(self.cycle);
        if seqs.is_empty() {
            self.completions.recycle(seqs);
            return Ok(());
        }
        // Out-of-order issue can schedule completions for one cycle in
        // any order; broadcast oldest-first like real wakeup ports.
        seqs.sort_unstable();
        for &seq in &seqs {
            let Some(idx) = self.rob_index(seq) else {
                continue; // squashed while in flight
            };
            // `idx` stays valid through the wakeup broadcasts below: they
            // mutate entries in place but never insert or remove.
            let (dst, result, dst2, result2, is_branch) = {
                let e = &mut self.rob[idx];
                e.done = true;
                (
                    e.dst,
                    e.result,
                    e.dst2,
                    e.result2,
                    e.inst.opcode.is_branch(),
                )
            };
            if is_branch {
                self.unresolved_branches.remove(seq);
            }
            self.renamer.on_writeback(seq);
            if self.config.trace {
                let pc = self.rob[idx].pc;
                self.trace_event(seq, pc, TraceStage::Writeback);
            }
            if let Some(tag) = dst {
                let Some(bits) = result else {
                    return Err(
                        self.corrupt_err(format!("seq {seq} writes {tag} but produced no value"))
                    );
                };
                self.rf[tag.class.index()].write(tag.preg, tag.version, bits);
                self.broadcast_ready(tag)?;
            }
            if let Some(tag) = dst2 {
                let Some(bits) = result2 else {
                    return Err(self.corrupt_err(format!(
                        "seq {seq} writes back {tag} but produced no value"
                    )));
                };
                self.rf[tag.class.index()].write(tag.preg, tag.version, bits);
                self.broadcast_ready(tag)?;
            }
            // Resolve branches.
            let e = &self.rob[idx];
            if e.kind == UopKind::Main && e.inst.opcode.is_branch() {
                let (pc, inst, next_pc) = (e.pc, e.inst, e.next_pc);
                let (taken, pred) = match (e.taken, e.pred) {
                    (Some(t), Some(p)) => (t, p),
                    _ => {
                        return Err(self.corrupt_err(format!(
                            "resolved branch seq {seq} is missing its outcome or prediction"
                        )));
                    }
                };
                let target = next_pc;
                self.bpred.update(pc, &inst, taken, target, pred);
                let mispredicted = pred.taken != taken || (taken && pred.target != target);
                if mispredicted {
                    self.mispredicts += 1;
                    let extra = self.squash_younger_than(seq);
                    self.fetch_pc = Some(next_pc);
                    self.fetch_stall_until = self
                        .fetch_stall_until
                        .max(self.cycle + self.config.mispredict_penalty as u64 + extra as u64);
                    self.pending_verify = true;
                    // Nested-recovery injection: an interrupt scheduled
                    // on this misprediction ordinal is delivered later
                    // this same cycle, mid-recovery.
                    if let Some(inj) = &mut self.inject {
                        let ordinal = inj.mispredicts_seen;
                        inj.mispredicts_seen += 1;
                        if inj.nested_ordinals.binary_search(&ordinal).is_ok() {
                            inj.pending_interrupt = true;
                            inj.stats.nested_interrupts += 1;
                        }
                    }
                }
            }
        }
        self.completions.recycle(seqs);
        Ok(())
    }

    // ---- issue / execute ----

    fn issue(&mut self) -> Result<(), SimError> {
        if self.ready_q.is_empty() {
            return Ok(());
        }
        let mut issued: Vec<u64> = Vec::new();
        // Select in sequence order — the same oldest-first policy the
        // poll-based scheduler had, since the old queue was scanned in
        // dispatch order. Entries that fail to issue (busy functional
        // unit, store-set conflict, unresolved older store) stay in the
        // ready queue and retry next cycle.
        let mut candidates = std::mem::take(&mut self.cand_scratch);
        candidates.clear();
        candidates.extend_from_slice(self.ready_q.as_slice());
        for seq in candidates.drain(..) {
            if issued.len() >= self.config.issue_width {
                break;
            }
            let Some(idx) = self.rob_index(seq) else {
                issued.push(seq); // squashed; drop from the ready queue
                continue;
            };
            let entry = &self.rob[idx];
            debug_assert!(
                entry
                    .srcs
                    .iter()
                    .flatten()
                    .all(|t| self.scoreboard.is_ready(*t)),
                "seq {seq} selected with a busy source operand",
            );
            let inst = entry.inst;
            let kind = entry.kind;
            let pc = entry.pc;
            let srcs = entry.srcs;
            match kind {
                UopKind::RepairMove => {
                    let Some(lat) = self
                        .fus
                        .try_issue(regshare_isa::OpClass::IntAlu, self.cycle)
                    else {
                        continue;
                    };
                    let Some(src) = srcs[0] else {
                        return Err(self
                            .corrupt_err(format!("repair move seq {seq} has no source operand")));
                    };
                    let expensive = self.rf[src.class.index()].needs_recover(src.preg, src.version);
                    let value = self.rf[src.class.index()].read_version(src.preg, src.version);
                    let total = if expensive {
                        self.expensive_repairs += 1;
                        lat + 2 // the 3-step micro-op sequence of Fig. 8 2(a)
                    } else {
                        lat
                    };
                    let e = &mut self.rob[idx];
                    e.result = Some(value);
                    e.issued = true;
                    self.schedule(seq, total);
                    issued.push(seq);
                }
                UopKind::Main if inst.opcode.is_load() => {
                    if !self.lsq.older_stores_resolved(seq) {
                        continue;
                    }
                    let ops = self.read_operands(&srcs);
                    let (ea, width, writeback) = match exec::evaluate(&inst, pc, ops) {
                        Action::Load { ea, width } => (ea, width, None),
                        Action::LoadPost {
                            ea,
                            width,
                            writeback,
                        } => (ea, width, Some(writeback)),
                        other => {
                            return Err(self.corrupt_err(format!(
                                "load seq {seq} evaluated to a non-load action {other:?}"
                            )));
                        }
                    };
                    let found = match self.lsq.search(seq, ea, width) {
                        Ok(found) => found,
                        Err(e) => return Err(self.lsq_err(e)),
                    };
                    match found {
                        StoreSearch::Conflict { .. } => continue,
                        StoreSearch::Forward(bits) => {
                            if self
                                .fus
                                .try_issue(regshare_isa::OpClass::Load, self.cycle)
                                .is_none()
                            {
                                continue;
                            }
                            let lat = 1 + self.config.mem.l1d.latency;
                            let e = &mut self.rob[idx];
                            e.result = Some(bits);
                            e.result2 = writeback;
                            e.ea = Some(ea);
                            e.issued = true;
                            self.schedule(seq, lat);
                            issued.push(seq);
                        }
                        StoreSearch::Memory => {
                            if self
                                .fus
                                .try_issue(regshare_isa::OpClass::Load, self.cycle)
                                .is_none()
                            {
                                continue;
                            }
                            let access =
                                self.mem_timing
                                    .access_data_checked(pc * 4, ea, false, self.cycle);
                            let (lat, bits, fault) = match access {
                                DataAccess::Done(lat) => {
                                    (1 + lat, self.memory.read(ea, width), false)
                                }
                                DataAccess::Fault => (2, 0, true),
                            };
                            // A forced fault retries cleanly after the
                            // precise flush (the armed flag is one-shot).
                            let fault = fault || self.consume_armed_load_fault();
                            let e = &mut self.rob[idx];
                            e.result = Some(bits);
                            e.result2 = writeback;
                            e.ea = Some(ea);
                            e.exception = fault;
                            e.issued = true;
                            self.schedule(seq, lat);
                            issued.push(seq);
                        }
                    }
                }
                UopKind::Main if inst.opcode.is_store() => {
                    let Some(lat) = self.fus.try_issue(regshare_isa::OpClass::Store, self.cycle)
                    else {
                        continue;
                    };
                    let ops = self.read_operands(&srcs);
                    let (ea, width, value, writeback) = match exec::evaluate(&inst, pc, ops) {
                        Action::Store { ea, width, value } => (ea, width, value, None),
                        Action::StorePost {
                            ea,
                            width,
                            value,
                            writeback,
                        } => (ea, width, value, Some(writeback)),
                        other => {
                            return Err(self.corrupt_err(format!(
                                "store seq {seq} evaluated to a non-store action {other:?}"
                            )));
                        }
                    };
                    if let Err(e) = self.lsq.resolve_store(seq, ea, width, value) {
                        return Err(self.lsq_err(e));
                    }
                    let forced = self.consume_armed_store_fault();
                    let fault = self.mem_timing.tlb().would_fault(ea) || forced;
                    let e = &mut self.rob[idx];
                    e.ea = Some(ea);
                    e.result2 = writeback;
                    e.exception = fault;
                    e.issued = true;
                    self.schedule(seq, lat);
                    issued.push(seq);
                }
                UopKind::Main => {
                    let class = inst.opcode.class();
                    let Some(lat) = self.fus.try_issue(class, self.cycle) else {
                        continue;
                    };
                    let ops = self.read_operands(&srcs);
                    let action = exec::evaluate(&inst, pc, ops);
                    let e = &mut self.rob[idx];
                    match action {
                        Action::Value(bits) => {
                            e.result = Some(bits);
                            e.next_pc = pc + 1;
                        }
                        Action::Branch {
                            taken,
                            target,
                            link,
                        } => {
                            e.taken = Some(taken);
                            e.next_pc = if taken { target } else { pc + 1 };
                            e.result = link;
                        }
                        Action::Nop | Action::Halt => {
                            e.next_pc = pc + 1;
                        }
                        Action::Load { .. }
                        | Action::Store { .. }
                        | Action::LoadPost { .. }
                        | Action::StorePost { .. } => {
                            return Err(self.corrupt_err(format!(
                                "non-memory seq {seq} evaluated to a memory action"
                            )));
                        }
                    }
                    e.issued = true;
                    self.schedule(seq, lat);
                    issued.push(seq);
                }
            }
        }
        for s in &issued {
            if self.ready_q.remove(*s) {
                self.iq_len -= 1;
            }
        }
        self.cand_scratch = candidates;
        Ok(())
    }

    fn schedule(&mut self, seq: u64, latency: u32) {
        self.renamer.on_operands_read(seq);
        if self.config.trace {
            if let Some(pc) = self.rob_entry(seq).map(|e| e.pc) {
                self.trace_event(seq, pc, TraceStage::Issue);
            }
        }
        self.completions
            .schedule(self.cycle + latency.max(1) as u64, seq);
    }

    // ---- rename/dispatch ----

    fn rename_dispatch(&mut self) {
        const WORST_CASE_UOPS: usize = 4;
        let mut stalled_for_regs = false;
        for _ in 0..self.config.rename_width {
            let Some(f) = self.decode_queue.front() else {
                break;
            };
            let rob_free = self.config.rob_entries - self.rob.len();
            let iq_free = self.config.iq_entries - self.iq_len;
            let is_load = f.inst.opcode.is_load() as usize;
            let is_store = f.inst.opcode.is_store() as usize;
            if rob_free < WORST_CASE_UOPS
                || iq_free < WORST_CASE_UOPS
                || !self.lsq.has_room(is_load, is_store)
            {
                break;
            }
            let Some(uops) = self.renamer.rename(self.next_seq, f.pc, &f.inst) else {
                stalled_for_regs = true;
                break;
            };
            let f = self.decode_queue.pop_front().expect("front checked above");
            self.next_seq += uops.len() as u64;
            for uop in uops {
                for dst in [uop.dst, uop.dst2].into_iter().flatten() {
                    self.scoreboard.set_busy(dst);
                    if dst.version == 0 {
                        self.rf[dst.class.index()].reset_on_alloc(dst.preg);
                    }
                }
                let is_main = uop.kind == UopKind::Main;
                if is_main && f.inst.opcode.is_load() {
                    self.lsq.dispatch_load(uop.seq);
                }
                if is_main && f.inst.opcode.is_store() {
                    self.lsq.dispatch_store(uop.seq);
                }
                self.trace_event(uop.seq, f.pc, TraceStage::Dispatch);
                // Register with the wakeup network: count the busy
                // sources and park on each; producers can only precede
                // consumers in rename order, so a tag observed ready
                // here stays ready until this entry issues.
                let mut pending_srcs = 0u8;
                for tag in uop.srcs.iter().flatten() {
                    if !self.scoreboard.is_ready(*tag) {
                        self.scoreboard.watch(*tag, uop.seq);
                        pending_srcs += 1;
                    }
                }
                self.rob.push_back(RobEntry {
                    seq: uop.seq,
                    pc: f.pc,
                    inst: f.inst,
                    kind: uop.kind,
                    srcs: uop.srcs,
                    dst: uop.dst,
                    dst2: uop.dst2,
                    pred: if is_main { f.pred } else { None },
                    issued: false,
                    done: false,
                    pending_srcs,
                    exception: false,
                    result: None,
                    result2: None,
                    ea: None,
                    taken: None,
                    next_pc: f.pc + 1,
                });
                if pending_srcs == 0 {
                    self.ready_q.insert(uop.seq);
                }
                self.iq_len += 1;
                if f.inst.opcode.is_branch() {
                    self.unresolved_branches.insert(uop.seq);
                }
            }
        }
        if stalled_for_regs {
            self.rename_stall_cycles += 1;
        }
    }

    // ---- front end ----

    fn decode(&mut self) {
        let cap = self.config.rename_width * 2;
        for _ in 0..self.config.decode_width {
            if self.decode_queue.len() >= cap {
                break;
            }
            let Some(f) = self.fetch_queue.pop_front() else {
                break;
            };
            self.decode_queue.push_back(f);
        }
    }

    fn fetch(&mut self) {
        if self.cycle < self.fetch_stall_until {
            return;
        }
        let Some(mut pc) = self.fetch_pc else { return };
        for _ in 0..self.config.fetch_width {
            if self.fetch_queue.len() >= self.config.fetch_queue {
                break;
            }
            let Some(inst) = self.program.fetch(pc).copied() else {
                // Ran off the program (wrong path): wait for a redirect.
                self.fetch_pc = None;
                return;
            };
            let lat = self.mem_timing.access_inst(pc * 4, self.cycle);
            if lat > self.config.mem.l1i.latency {
                // I-cache miss: nothing is delivered until the line
                // arrives; fetch retries this PC after the fill.
                self.fetch_stall_until = self.cycle + lat as u64;
                self.fetch_pc = Some(pc);
                return;
            }
            let pred = inst.opcode.is_branch().then(|| {
                let mut p = self.bpred.predict(pc, &inst);
                // An armed injection flip inverts the next prediction,
                // manufacturing a misprediction (and its recovery) the
                // workload would not produce on its own. Wrong-path
                // fetch is already a normal mode of this pipeline.
                if let Some(inj) = &mut self.inject {
                    if inj.armed_flip {
                        inj.armed_flip = false;
                        inj.stats.branch_flips += 1;
                        p.taken = !p.taken;
                    }
                }
                p
            });
            let taken_pred = pred.map(|p| p.taken).unwrap_or(false);
            let next = match pred {
                Some(p) if p.taken => p.target,
                _ => pc + 1,
            };
            let is_halt = inst.opcode == Opcode::Halt;
            self.fetch_queue.push_back(Fetched { pc, inst, pred });
            if is_halt {
                self.fetch_pc = None;
                return;
            }
            pc = next;
            if taken_pred || self.cycle < self.fetch_stall_until {
                break; // a taken branch or an i-cache miss ends the group
            }
        }
        self.fetch_pc = Some(pc);
    }

    fn sample_occupancy(&mut self) {
        let interval = self.config.occupancy_sample_interval;
        if interval == 0 || !self.cycle.is_multiple_of(interval) {
            return;
        }
        for (class, samplers) in [
            (RegClass::Int, &mut self.int_occupancy),
            (RegClass::Fp, &mut self.fp_occupancy),
        ] {
            for (k, used) in self.renamer.in_use_per_bank(class).into_iter().enumerate() {
                samplers[k].record(used as u64);
            }
        }
    }

    /// Runs one cycle.
    fn step(&mut self) -> Result<(), SimError> {
        self.poll_injections();
        self.commit()?;
        if self.halted {
            return Ok(());
        }
        self.writeback()?;
        self.deliver_pending_interrupt();
        self.check_recovery_boundary()?;
        let boundary = self.unresolved_branches.first().unwrap_or(self.next_seq);
        self.renamer.advance_nonspeculative(boundary);
        self.issue()?;
        self.rename_dispatch();
        self.decode();
        self.fetch();
        self.audit_if_due()?;
        self.sample_occupancy();
        self.cycle += 1;
        Ok(())
    }

    /// Runs to completion (halt, instruction budget, or error).
    ///
    /// # Errors
    ///
    /// [`SimError::OracleMismatch`] if lockstep checking is enabled and
    /// the timing model diverges from the functional machine;
    /// [`SimError::CycleLimit`] / [`SimError::Deadlock`] on runaway
    /// simulations.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        let started = Instant::now();
        let result = self.run_loop();
        self.wall_seconds += started.elapsed().as_secs_f64();
        result?;
        Ok(self.report())
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        loop {
            self.step()?;
            if self.halted {
                break;
            }
            if self.config.max_instructions > 0
                && self.committed_instructions >= self.config.max_instructions
            {
                break;
            }
            if self.config.max_cycles > 0 && self.cycle >= self.config.max_cycles {
                return Err(SimError::CycleLimit {
                    cycles: self.config.max_cycles,
                });
            }
            // Forward-progress watchdog: convert a hang into a
            // structured diagnostic with a full pipeline snapshot
            // (the snapshot's head section carries operand readiness).
            if !self.rob.is_empty() && self.cycle - self.last_commit_cycle > 100_000 {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    head_seq: self.rob.front().map(|e| e.seq),
                    snapshot: Box::new(self.snapshot()),
                });
            }
        }
        if self.halted {
            // End-of-run precise-state check: the committed register file
            // and memory must match the functional oracle exactly.
            self.verify_arch_state()?;
        }
        Ok(())
    }

    /// The report for the simulation so far.
    pub fn report(&self) -> SimReport {
        SimReport {
            cycles: self.cycle,
            committed_instructions: self.committed_instructions,
            committed_uops: self.committed_uops,
            halted: self.halted,
            mispredicts: self.mispredicts,
            exceptions: self.exceptions,
            shadow_recovers: self.shadow_recovers,
            expensive_repairs: self.expensive_repairs,
            rename_stall_cycles: self.rename_stall_cycles,
            branch_direction_accuracy: self.bpred.direction_accuracy().fraction(),
            l1d_hit_rate: self.mem_timing.l1d().hit_ratio().fraction(),
            l2_hit_rate: self.mem_timing.l2().hit_ratio().fraction(),
            tlb_hit_rate: self.mem_timing.tlb().hit_ratio().fraction(),
            rename: self.renamer.stats().clone(),
            predictor: self.renamer.predictor_stats(),
            int_occupancy: self.int_occupancy.clone(),
            fp_occupancy: self.fp_occupancy.clone(),
            wall_seconds: self.wall_seconds,
        }
    }

    /// The committed data memory (for end-of-run output checks).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The renamer, for scheme-specific inspection.
    pub fn renamer(&self) -> &dyn Renamer {
        self.renamer.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_core::{BaselineRenamer, RenamerConfig, ReuseRenamer};
    use regshare_isa::{reg, Asm};

    fn baseline(regs: usize) -> Box<dyn Renamer> {
        Box::new(BaselineRenamer::new(RenamerConfig::baseline(regs)))
    }

    fn tiny_program() -> Program {
        let mut a = Asm::new();
        a.li(reg::x(1), 5);
        a.addi(reg::x(1), reg::x(1), 1);
        a.halt();
        a.assemble()
    }

    #[test]
    fn max_instructions_stops_early() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.addi(reg::x(1), reg::x(1), 1);
        a.jmp(top);
        let mut cfg = SimConfig::test();
        cfg.max_instructions = 100;
        let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
        let report = sim.run().expect("bounded run");
        assert!(!report.halted);
        assert!(report.committed_instructions >= 100);
    }

    #[test]
    fn cycle_limit_reports_error() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.jmp(top);
        let cfg = SimConfig {
            max_cycles: 500,
            ..SimConfig::default()
        };
        let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
        assert!(matches!(
            sim.run(),
            Err(SimError::CycleLimit { cycles: 500 })
        ));
    }

    #[test]
    fn report_available_mid_run() {
        let mut sim = Pipeline::new(tiny_program(), baseline(64), SimConfig::test());
        let before = sim.report();
        assert_eq!(before.committed_instructions, 0);
        sim.run().expect("run");
        let after = sim.report();
        assert_eq!(after.committed_instructions, 3);
        assert!(after.halted);
        assert!(sim.cycle() > 0);
    }

    #[test]
    fn occupancy_sampling_fills_samplers() {
        let mut a = Asm::new();
        a.li(reg::x(1), 200);
        let top = a.label();
        a.bind(top);
        a.subi(reg::x(1), reg::x(1), 1);
        a.bne(reg::x(1), reg::zero(), top);
        a.halt();
        let mut cfg = SimConfig::test();
        cfg.occupancy_sample_interval = 4;
        let renamer = Box::new(ReuseRenamer::new(RenamerConfig::paper(64)));
        let mut sim = Pipeline::new(a.assemble(), renamer, cfg);
        let report = sim.run().expect("run");
        assert_eq!(report.int_occupancy.len(), 4); // four banks
        assert!(!report.int_occupancy[0].is_empty());
        // The conventional bank always holds at least some committed state.
        assert!(report.int_occupancy[0].min().unwrap_or(0) > 0);
    }

    #[test]
    fn renamer_accessor_exposes_stats() {
        let mut sim = Pipeline::new(tiny_program(), baseline(64), SimConfig::test());
        sim.run().expect("run");
        assert!(sim.renamer().stats().renamed >= 3);
        assert_eq!(sim.renamer().banks(RegClass::Int).total(), 64);
    }

    #[test]
    fn sim_error_display_is_informative() {
        let e = SimError::OracleMismatch {
            cycle: 7,
            detail: "x".into(),
            snapshot: Box::default(),
        };
        assert!(format!("{e}").contains("cycle 7"));
        let e = SimError::Deadlock {
            cycle: 9,
            head_seq: Some(3),
            snapshot: Box::default(),
        };
        assert!(format!("{e}").contains('9'));
        let e = SimError::CycleLimit { cycles: 11 };
        assert!(format!("{e}").contains("11"));
        let e = SimError::Invariant {
            cycle: 13,
            what: "free list leak".into(),
            snapshot: Box::default(),
        };
        assert!(format!("{e}").contains("free list leak"));
        let e = SimError::Lsq {
            cycle: 15,
            error: LsqError {
                seq: 4,
                detail: "bad".into(),
            },
            snapshot: Box::default(),
        };
        let shown = format!("{e}");
        assert!(shown.contains("seq 4") && shown.contains("pipeline snapshot"));
    }

    #[test]
    fn snapshot_describes_live_state() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.addi(reg::x(1), reg::x(1), 1);
        a.jmp(top);
        let mut cfg = SimConfig::test();
        cfg.max_instructions = 50;
        let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
        sim.run().expect("bounded run");
        let snap = sim.snapshot();
        assert_eq!(snap.cycle, sim.cycle());
        assert!(snap.rob > 0, "infinite loop keeps the ROB busy");
        let head = snap.head.as_ref().expect("rob non-empty");
        assert!(!head.inst.is_empty());
        let shown = format!("{snap}");
        assert!(shown.contains("pipeline snapshot") && shown.contains("head:"));
    }

    #[test]
    fn fetch_stops_at_program_end_without_halt() {
        // Fall off the end: fetch stalls, rob drains, deadlock guard fires
        // only after its window — use max_instructions to stop first.
        let mut a = Asm::new();
        a.li(reg::x(1), 1);
        a.addi(reg::x(1), reg::x(1), 1);
        a.halt();
        let mut cfg = SimConfig::test();
        cfg.max_instructions = 2;
        let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
        let report = sim.run().expect("run");
        assert!(report.committed_instructions >= 2);
    }

    #[test]
    fn division_occupies_unpipelined_unit() {
        // Two back-to-back divides take at least 2x the divide latency.
        let mut a = Asm::new();
        a.li(reg::x(1), 100);
        a.li(reg::x(2), 3);
        a.sdiv(reg::x(3), reg::x(1), reg::x(2));
        a.sdiv(reg::x(4), reg::x(1), reg::x(2));
        a.halt();
        let cfg = SimConfig::test();
        let div_lat = cfg.fu(regshare_isa::OpClass::IntDiv).latency as u64;
        let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
        let report = sim.run().expect("run");
        assert!(
            report.cycles >= 2 * div_lat,
            "two unpipelined divides must serialize: {} cycles",
            report.cycles
        );
    }

    #[test]
    fn store_load_forwarding_avoids_memory_latency() {
        // A load that forwards from an in-flight store never touches the
        // data memory hierarchy; a cold load to a fresh address pays the
        // full TLB-walk + DRAM round trip. Both programs pay the same
        // cold I-cache miss, so the difference isolates forwarding.
        let run = |forwarded: bool| {
            let mut a = Asm::new();
            a.li(reg::x(1), 0x4_0000);
            a.li(reg::x(2), 99);
            if forwarded {
                a.st(reg::x(2), reg::x(1), 0);
                a.ld(reg::x(3), reg::x(1), 0); // forwards from the store
            } else {
                a.nop();
                a.ld(reg::x(3), reg::x(1), 0); // cold miss all the way down
            }
            a.halt();
            let mut sim = Pipeline::new(a.assemble(), baseline(64), SimConfig::test());
            sim.run().expect("run").cycles
        };
        let fwd = run(true);
        let cold = run(false);
        assert!(
            fwd + 40 <= cold,
            "forwarding should beat a cold load: forwarded {fwd} vs cold {cold}"
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use regshare_core::{BaselineRenamer, RenamerConfig};
    use regshare_isa::{reg, Asm};

    #[test]
    fn trace_records_ordered_stages_per_uop() {
        let mut a = Asm::new();
        a.li(reg::x(1), 3);
        a.addi(reg::x(2), reg::x(1), 4);
        a.mul(reg::x(3), reg::x(1), reg::x(2));
        a.halt();
        let mut cfg = SimConfig::test();
        cfg.trace = true;
        let renamer = Box::new(BaselineRenamer::new(RenamerConfig::baseline(64)));
        let mut sim = Pipeline::new(a.assemble(), renamer, cfg);
        sim.run().expect("run");
        let trace = sim.take_trace();
        assert!(!trace.is_empty());
        // Every committed uop passed all four stages, in time order.
        for seq in 1..=4u64 {
            let stages: Vec<(TraceStage, u64)> = trace
                .iter()
                .filter(|e| e.seq == seq)
                .map(|e| (e.stage, e.cycle))
                .collect();
            assert_eq!(stages.len(), 4, "seq {seq} has {stages:?}");
            for w in stages.windows(2) {
                assert!(w[0].0 < w[1].0, "stage order for seq {seq}: {stages:?}");
                assert!(w[0].1 <= w[1].1, "cycle order for seq {seq}: {stages:?}");
            }
        }
        // Dependent mul issues strictly after its producer's writeback.
        let wb_addi = trace
            .iter()
            .find(|e| e.seq == 2 && e.stage == TraceStage::Writeback)
            .expect("addi writeback")
            .cycle;
        let issue_mul = trace
            .iter()
            .find(|e| e.seq == 3 && e.stage == TraceStage::Issue)
            .expect("mul issue")
            .cycle;
        assert!(issue_mul >= wb_addi);
        // The trace is drained after take_trace.
        assert!(sim.take_trace().is_empty());
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut a = Asm::new();
        a.halt();
        let renamer = Box::new(BaselineRenamer::new(RenamerConfig::baseline(64)));
        let mut sim = Pipeline::new(a.assemble(), renamer, SimConfig::test());
        sim.run().expect("run");
        assert!(sim.take_trace().is_empty());
    }
}
