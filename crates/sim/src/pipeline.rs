//! The out-of-order pipeline driver: fetch → decode → rename → issue →
//! execute → writeback → commit, with full mis-speculation recovery.
//!
//! The driver is deliberately thin. All machine structures live in
//! [`CoreState`], the inter-stage queues live in [`StageIo`], the
//! per-stage logic lives under [`crate::stages`], and every flush path
//! funnels through [`crate::recovery`]. What remains here is the cycle
//! loop: sequencing the stage ticks in commit-first order, the run /
//! watchdog / report plumbing, and the public inspection API.

use crate::bpred::BranchPredictor;
use crate::cancel::{CancelToken, CANCEL_CHECK_INTERVAL};
use crate::core_state::{CoreState, RobEntry, SeqSet, StageIo, ThreadCtx};
use crate::errors::{PipelineSnapshot, SimError, TraceEvent};
use crate::inject::{InjectSchedule, InjectState, InjectStats};
use crate::policy::RecoveryPolicy;
use crate::profile::{StageSlot, StageTimer};
use crate::recovery;
use crate::rob::Rob;
use crate::stages::{
    CommitStage, DecodeStage, DispatchStage, ExecuteStage, FetchStage, IssueStage, RenameStage,
    StageOutcome, WritebackStage,
};
use crate::{CompletionWheel, FuPool, LoadStoreQueue, Scoreboard, SimConfig, SimReport};
use regshare_core::{RegFile, Renamer};
use regshare_isa::{HartId, Machine, Memory, Program, RegClass};
use regshare_mem::MemoryHierarchy;
use regshare_stats::Sampler;
use std::time::Instant;

/// Per-thread construction inputs for [`Pipeline::build`].
struct ThreadInit {
    program: Program,
    memory: Memory,
    fetch_pc: Option<u64>,
    oracle: Option<Machine>,
}

/// The cycle-accurate out-of-order core, hosting one or more hardware
/// threads over a shared physical register file.
pub struct Pipeline {
    core: CoreState,
    /// One latch set per hardware thread.
    lat: Vec<StageIo>,
    fetch: FetchStage,
    decode: DecodeStage,
    rename: RenameStage,
    dispatch: DispatchStage,
    issue: IssueStage,
    execute: ExecuteStage,
    writeback: WritebackStage,
    commit: CommitStage,
    recovery: Box<dyn RecoveryPolicy>,
    cancel: Option<CancelToken>,
    /// A configuration rejected by [`SimConfig::validate`] at
    /// construction; surfaced as the run's error before any cycle is
    /// simulated (the infallible constructors build a sanitized stand-in
    /// that is never actually stepped).
    config_error: Option<SimError>,
}

impl Pipeline {
    /// Creates a single-thread pipeline at the program entry with cold
    /// caches and predictors. The issue-selection, fetch and recovery
    /// policies are built from [`SimConfig::issue_policy`] /
    /// [`SimConfig::fetch_policy`] / [`SimConfig::recovery_policy`].
    ///
    /// An invalid configuration (see [`SimConfig::validate`]) is not a
    /// panic: the error is held and returned by the first `run` call.
    /// `config.threads` must be 1 — use [`Pipeline::new_smt`] for
    /// multi-threaded cores.
    pub fn new(program: Program, renamer: Box<dyn Renamer>, config: SimConfig) -> Self {
        match Pipeline::new_smt(vec![program], renamer, config.clone()) {
            Ok(pipe) => pipe,
            Err(err) => Pipeline::poisoned(err, config),
        }
    }

    /// Creates an SMT pipeline: one program per hardware thread, all
    /// sharing the physical register file, issue queue, functional units
    /// and predictors through `renamer` (which must be built for the
    /// same thread count).
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] if the configuration fails
    /// [`SimConfig::validate`], `programs.len() != config.threads`, or
    /// the renamer's thread count disagrees.
    pub fn new_smt(
        programs: Vec<Program>,
        renamer: Box<dyn Renamer>,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        config.validate()?;
        if programs.len() != config.threads {
            return Err(SimError::Config {
                what: format!(
                    "{} program(s) supplied for {} hardware thread(s)",
                    programs.len(),
                    config.threads
                ),
            });
        }
        if renamer.threads() != config.threads {
            return Err(SimError::Config {
                what: format!(
                    "renamer is built for {} thread(s) but config.threads is {}",
                    renamer.threads(),
                    config.threads
                ),
            });
        }
        let inits = programs
            .into_iter()
            .map(|program| ThreadInit {
                memory: program.data().clone(),
                fetch_pc: Some(program.entry() as u64),
                oracle: config.check_oracle.then(|| Machine::new(program.clone())),
                program,
            })
            .collect();
        let mem_timing = MemoryHierarchy::new(config.mem);
        let bpred = BranchPredictor::new(config.bpred);
        Ok(Pipeline::build(inits, renamer, config, mem_timing, bpred))
    }

    /// A pipeline that only exists to surface `err` from its first `run`
    /// call: built from a sanitized copy of the rejected configuration
    /// and a trivial program, never stepped.
    fn poisoned(err: SimError, config: SimConfig) -> Self {
        let config = config.sanitized();
        let mut a = regshare_isa::Asm::new();
        a.halt();
        let program = a.assemble();
        let renamer = Box::new(regshare_core::BaselineRenamer::new(
            regshare_core::RenamerConfig::baseline(32 * config.threads + 32)
                .with_threads(config.threads),
        ));
        let mut pipe = Pipeline::new_smt(vec![program; config.threads], renamer, config)
            .expect("sanitized configurations always build");
        pipe.config_error = Some(err);
        pipe
    }

    /// Creates a pipeline resuming mid-stream from a functional machine
    /// state, with pre-warmed memory timing and branch predictor (their
    /// hit/accuracy accounting is cleared so the run's report reflects
    /// only detailed simulation). The committed register file is seeded
    /// with the machine's architectural values through the renamer's
    /// retire-time map; the lockstep oracle (when enabled) starts from a
    /// clone of the same machine, so mid-stream windows get full
    /// divergence checking.
    pub fn from_checkpoint(
        machine: &Machine,
        mut mem_timing: MemoryHierarchy,
        mut bpred: BranchPredictor,
        renamer: Box<dyn Renamer>,
        config: SimConfig,
    ) -> Self {
        let mut config_error = config.validate().err();
        if config_error.is_none() && config.threads != 1 {
            config_error = Some(SimError::Config {
                what: "checkpoint resume is single-threaded; config.threads must be 1".into(),
            });
        }
        let config = if config_error.is_some() {
            let mut c = config.sanitized();
            c.threads = 1;
            c
        } else {
            config
        };
        mem_timing.reset_stats();
        bpred.reset_stats();
        let init = ThreadInit {
            program: machine.program().clone(),
            memory: machine.memory().clone(),
            fetch_pc: (!machine.is_halted()).then(|| machine.pc()),
            oracle: config.check_oracle.then(|| machine.clone()),
        };
        let mut pipe = Pipeline::build(vec![init], renamer, config, mem_timing, bpred);
        pipe.config_error = config_error;
        let mut seeds = Vec::new();
        if let Some(map) = pipe.core.renamer.arch_map() {
            for class in [RegClass::Int, RegClass::Fp] {
                for (r, tag) in map.iter_class(class) {
                    if !r.is_zero() {
                        seeds.push((tag, machine.reg_bits(r)));
                    }
                }
            }
        }
        for (tag, bits) in seeds {
            pipe.core.rf[tag.class.index()].write(tag.preg, tag.version, bits);
        }
        pipe
    }

    fn build(
        inits: Vec<ThreadInit>,
        renamer: Box<dyn Renamer>,
        config: SimConfig,
        mut mem_timing: MemoryHierarchy,
        bpred: BranchPredictor,
    ) -> Self {
        let mut renamer = renamer;
        if let Some(h) = inits[0].program.hints() {
            renamer.install_hints(h);
        }
        let issue_select = config.issue_policy.build();
        let fetch_policy = config.fetch_policy.build();
        let recovery = config.recovery_policy.build();
        let rf = [
            RegFile::new(renamer.banks(RegClass::Int)),
            RegFile::new(renamer.banks(RegClass::Fp)),
        ];
        let scoreboard =
            Scoreboard::new(rf[0].len(), rf[1].len(), renamer.max_version() as usize + 1);
        for addr in &config.inject_page_faults {
            mem_timing.tlb_mut().inject_fault(*addr);
        }
        let int_occupancy = (0..renamer.banks(RegClass::Int).num_banks())
            .map(|k| Sampler::new(format!("int_bank{k}")))
            .collect();
        let fp_occupancy = (0..renamer.banks(RegClass::Fp).num_banks())
            .map(|k| Sampler::new(format!("fp_bank{k}")))
            .collect();
        let n = inits.len();
        let rob_partition = config.rob_entries / n;
        let threads: Vec<ThreadCtx> = inits
            .into_iter()
            .enumerate()
            .map(|(tid, init)| ThreadCtx {
                hart: HartId::new(tid),
                program: init.program,
                memory: init.memory,
                oracle: init.oracle,
                rob: Rob::new(rob_partition, RobEntry::filler()),
                lsq: LoadStoreQueue::new(config.lq_entries / n, config.sq_entries / n),
                unresolved_branches: SeqSet::default(),
                fetch_pc: init.fetch_pc,
                fetch_stall_until: 0,
                pending_fill: None,
                halted: false,
                committed_instructions: 0,
            })
            .collect();
        let completions = CompletionWheel::with_in_flight_bound(config.rob_entries);
        let core = CoreState {
            bpred,
            fus: FuPool::new(&config),
            config,
            threads,
            renamer,
            rf,
            scoreboard,
            mem_timing,
            ready_q: SeqSet::default(),
            iq_len: 0,
            wake_scratch: Vec::new(),
            squash_scratch: Vec::new(),
            next_seq: 1,
            cycle: 0,
            completions,
            inject: None,
            pending_verify: false,
            audits: 0,
            halted: false,
            committed_instructions: 0,
            committed_uops: 0,
            mispredicts: 0,
            exceptions: 0,
            shadow_recovers: 0,
            expensive_repairs: 0,
            rename_stall_cycles: 0,
            last_commit_cycle: 0,
            int_occupancy,
            fp_occupancy,
            occupancy_scratch: Vec::new(),
            trace: Vec::new(),
            wall_seconds: 0.0,
            profile: Default::default(),
        };
        let iq_entries = core.config.iq_entries;
        Pipeline {
            lat: (0..n).map(|_| StageIo::default()).collect(),
            fetch: FetchStage::new(fetch_policy, n),
            decode: DecodeStage,
            rename: RenameStage::new(n),
            dispatch: DispatchStage,
            issue: IssueStage::new(issue_select, iq_entries),
            execute: ExecuteStage,
            writeback: WritebackStage,
            commit: CommitStage,
            recovery,
            cancel: None,
            config_error: None,
            core,
        }
    }

    /// Arms a cooperative cancellation token. The driver loop polls it
    /// every [`CANCEL_CHECK_INTERVAL`] cycles and stops with
    /// [`SimError::Cancelled`] once it is set, so an external deadline
    /// supervisor can abort a runaway job within a bounded number of
    /// cycles. Cancellation never alters the results of runs that
    /// complete.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Drains the recorded cycle trace (empty unless [`SimConfig::trace`]
    /// was set).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.core.trace)
    }

    // ---- diagnostics / fault injection ----

    /// Captures the current pipeline state for a diagnostic dump.
    pub fn snapshot(&self) -> PipelineSnapshot {
        self.core.snapshot(&self.lat)
    }

    /// Arms a deterministic fault-injection schedule. Events fire at the
    /// first opportunity at or after their scheduled cycle; all are
    /// architecturally transparent, so a lockstep oracle must still see a
    /// divergence-free run.
    pub fn set_inject(&mut self, schedule: InjectSchedule) {
        self.core.inject = Some(InjectState::new(schedule));
    }

    /// Counts of injected events actually delivered so far.
    pub fn inject_stats(&self) -> InjectStats {
        self.core
            .inject
            .as_ref()
            .map(|i| i.stats)
            .unwrap_or_default()
    }

    /// Number of invariant audits performed so far.
    pub fn audits(&self) -> u64 {
        self.core.audits
    }

    // ---- the cycle loop ----

    /// Runs one cycle, ticking the stages oldest-first so each stage
    /// sees the machine state its position in the pipe implies.
    fn step(&mut self) -> Result<(), SimError> {
        let policy = self.recovery.as_ref();
        let mut timer = StageTimer::start(self.core.config.profile);
        recovery::poll_injections(&mut self.core, &mut self.lat, policy);
        timer.lap(&mut self.core.profile, StageSlot::Housekeeping);
        let halted =
            self.commit.tick(&mut self.core, &mut self.lat, policy)? == StageOutcome::Halted;
        timer.lap(&mut self.core.profile, StageSlot::Commit);
        if halted {
            return Ok(());
        }
        self.writeback.tick(&mut self.core, &mut self.lat, policy)?;
        timer.lap(&mut self.core.profile, StageSlot::Writeback);
        recovery::deliver_pending_interrupt(&mut self.core, &mut self.lat, policy);
        self.core.check_recovery_boundary(&self.lat)?;
        for tid in 0..self.core.threads.len() {
            let ctx = &self.core.threads[tid];
            let boundary = ctx
                .unresolved_branches
                .first()
                .unwrap_or(self.core.next_seq);
            let hart = ctx.hart;
            self.core.renamer.advance_nonspeculative_on(hart, boundary);
        }
        timer.lap(&mut self.core.profile, StageSlot::Housekeeping);
        self.issue
            .tick(&mut self.core, &mut self.lat, &mut self.execute)?;
        timer.lap(&mut self.core.profile, StageSlot::Issue);
        self.rename
            .tick(&mut self.core, &mut self.lat, &mut self.dispatch);
        timer.lap(&mut self.core.profile, StageSlot::Rename);
        self.decode.tick(&mut self.core, &mut self.lat);
        timer.lap(&mut self.core.profile, StageSlot::Decode);
        self.fetch.tick(&mut self.core, &mut self.lat);
        timer.lap(&mut self.core.profile, StageSlot::Fetch);
        self.core.audit_if_due(&self.lat)?;
        self.core.sample_occupancy();
        timer.lap(&mut self.core.profile, StageSlot::Observe);
        self.core.cycle += 1;
        Ok(())
    }

    /// Runs to completion (halt, instruction budget, or error).
    ///
    /// # Errors
    ///
    /// [`SimError::OracleMismatch`] if lockstep checking is enabled and
    /// the timing model diverges from the functional machine;
    /// [`SimError::CycleLimit`] / [`SimError::Deadlock`] on runaway
    /// simulations.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        if let Some(err) = &self.config_error {
            return Err(err.clone());
        }
        let started = Instant::now(); // det-lint: allow — wall-clock throughput report only
        let result = self.run_loop();
        self.core.wall_seconds += started.elapsed().as_secs_f64();
        result?;
        Ok(self.report())
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        loop {
            self.step()?;
            if self.core.halted {
                break;
            }
            if self.core.config.max_instructions > 0
                && self.core.committed_instructions >= self.core.config.max_instructions
            {
                break;
            }
            if self.core.cycle & (CANCEL_CHECK_INTERVAL - 1) == 0 {
                if let Some(token) = &self.cancel {
                    if token.is_cancelled() {
                        return Err(SimError::Cancelled {
                            cycle: self.core.cycle,
                        });
                    }
                }
            }
            if self.core.config.max_cycles > 0 && self.core.cycle >= self.core.config.max_cycles {
                return Err(SimError::CycleLimit {
                    cycles: self.core.config.max_cycles,
                });
            }
            // Forward-progress watchdog: convert a hang into a
            // structured diagnostic with a full pipeline snapshot
            // (the snapshot's head section carries operand readiness).
            if self.core.rob_nonempty() && self.core.cycle - self.core.last_commit_cycle > 100_000 {
                return Err(SimError::Deadlock {
                    cycle: self.core.cycle,
                    head_seq: self.core.oldest_inflight().map(|e| e.seq),
                    snapshot: Box::new(self.core.snapshot(&self.lat)),
                });
            }
        }
        if self.core.halted {
            // End-of-run precise-state check: the committed register file
            // and memory must match the functional oracle exactly.
            self.core.verify_arch_state(&self.lat)?;
        }
        Ok(())
    }

    /// Steps exactly `n` cycles (stopping early only on halt), without
    /// the budget/watchdog bookkeeping of [`Pipeline::run`] and without
    /// building a report. The allocation regression test warms a
    /// pipeline up, then drives steady-state cycles through this and
    /// asserts the heap stays untouched.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] surfaced by a stage or audit.
    pub fn run_cycles(&mut self, n: u64) -> Result<(), SimError> {
        if let Some(err) = &self.config_error {
            return Err(err.clone());
        }
        for _ in 0..n {
            if self.core.halted {
                break;
            }
            self.step()?;
        }
        Ok(())
    }

    /// Replaces the committed-instruction budget. The budget is absolute
    /// (compared against total committed instructions), so a run that
    /// stopped on it can be resumed by raising the budget and calling
    /// [`Pipeline::run`] again — the sampled engine uses this to split a
    /// window into a discarded warmup and a measured portion.
    pub fn set_max_instructions(&mut self, n: u64) {
        self.core.config.max_instructions = n;
    }

    /// The report for the simulation so far.
    pub fn report(&self) -> SimReport {
        SimReport {
            cycles: self.core.cycle,
            threads: self.core.threads.len(),
            per_thread_committed: self
                .core
                .threads
                .iter()
                .map(|ctx| ctx.committed_instructions)
                .collect(),
            committed_instructions: self.core.committed_instructions,
            committed_uops: self.core.committed_uops,
            halted: self.core.halted,
            mispredicts: self.core.mispredicts,
            exceptions: self.core.exceptions,
            shadow_recovers: self.core.shadow_recovers,
            expensive_repairs: self.core.expensive_repairs,
            rename_stall_cycles: self.core.rename_stall_cycles,
            branch_direction_accuracy: self.core.bpred.direction_accuracy().fraction(),
            l1d_hit_rate: self.core.mem_timing.l1d().hit_ratio().fraction(),
            l2_hit_rate: self.core.mem_timing.l2().hit_ratio().fraction(),
            tlb_hit_rate: self.core.mem_timing.tlb().hit_ratio().fraction(),
            rename: self.core.renamer.stats().clone(),
            predictor: self.core.renamer.predictor_stats(),
            hints: self.core.renamer.hint_stats(),
            int_occupancy: self.core.int_occupancy.clone(),
            fp_occupancy: self.core.fp_occupancy.clone(),
            wall_seconds: self.core.wall_seconds,
            warm_seconds: 0.0,
            warm_instructions: 0,
            profile: self.core.profile.clone(),
        }
    }

    /// Thread 0's committed data memory (for end-of-run output checks).
    pub fn memory(&self) -> &Memory {
        self.memory_of(0)
    }

    /// One thread's committed data memory.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not a resident thread.
    pub fn memory_of(&self, tid: usize) -> &Memory {
        &self.core.threads[tid].memory
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.core.cycle
    }

    /// The renamer, for scheme-specific inspection.
    pub fn renamer(&self) -> &dyn Renamer {
        self.core.renamer.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LsqError;
    use regshare_core::{BaselineRenamer, RenamerConfig, ReuseRenamer};
    use regshare_isa::{reg, Asm};

    fn baseline(regs: usize) -> Box<dyn Renamer> {
        Box::new(BaselineRenamer::new(RenamerConfig::baseline(regs)))
    }

    fn tiny_program() -> Program {
        let mut a = Asm::new();
        a.li(reg::x(1), 5);
        a.addi(reg::x(1), reg::x(1), 1);
        a.halt();
        a.assemble()
    }

    #[test]
    fn max_instructions_stops_early() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.addi(reg::x(1), reg::x(1), 1);
        a.jmp(top);
        let mut cfg = SimConfig::test();
        cfg.max_instructions = 100;
        let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
        let report = sim.run().expect("bounded run");
        assert!(!report.halted);
        assert!(report.committed_instructions >= 100);
    }

    #[test]
    fn cycle_limit_reports_error() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.jmp(top);
        let cfg = SimConfig {
            max_cycles: 500,
            ..SimConfig::default()
        };
        let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
        assert!(matches!(
            sim.run(),
            Err(SimError::CycleLimit { cycles: 500 })
        ));
    }

    #[test]
    fn report_available_mid_run() {
        let mut sim = Pipeline::new(tiny_program(), baseline(64), SimConfig::test());
        let before = sim.report();
        assert_eq!(before.committed_instructions, 0);
        sim.run().expect("run");
        let after = sim.report();
        assert_eq!(after.committed_instructions, 3);
        assert!(after.halted);
        assert!(sim.cycle() > 0);
    }

    #[test]
    fn occupancy_sampling_fills_samplers() {
        let mut a = Asm::new();
        a.li(reg::x(1), 200);
        let top = a.label();
        a.bind(top);
        a.subi(reg::x(1), reg::x(1), 1);
        a.bne(reg::x(1), reg::zero(), top);
        a.halt();
        let mut cfg = SimConfig::test();
        cfg.occupancy_sample_interval = 4;
        let renamer = Box::new(ReuseRenamer::new(RenamerConfig::paper(64)));
        let mut sim = Pipeline::new(a.assemble(), renamer, cfg);
        let report = sim.run().expect("run");
        assert_eq!(report.int_occupancy.len(), 4); // four banks
        assert!(!report.int_occupancy[0].is_empty());
        // The conventional bank always holds at least some committed state.
        assert!(report.int_occupancy[0].min().unwrap_or(0) > 0);
    }

    #[test]
    fn renamer_accessor_exposes_stats() {
        let mut sim = Pipeline::new(tiny_program(), baseline(64), SimConfig::test());
        sim.run().expect("run");
        assert!(sim.renamer().stats().renamed >= 3);
        assert_eq!(sim.renamer().banks(RegClass::Int).total(), 64);
    }

    #[test]
    fn sim_error_display_is_informative() {
        let e = SimError::OracleMismatch {
            cycle: 7,
            detail: "x".into(),
            snapshot: Box::default(),
        };
        assert!(format!("{e}").contains("cycle 7"));
        let e = SimError::Deadlock {
            cycle: 9,
            head_seq: Some(3),
            snapshot: Box::default(),
        };
        assert!(format!("{e}").contains('9'));
        let e = SimError::CycleLimit { cycles: 11 };
        assert!(format!("{e}").contains("11"));
        let e = SimError::Invariant {
            cycle: 13,
            what: "free list leak".into(),
            snapshot: Box::default(),
        };
        assert!(format!("{e}").contains("free list leak"));
        let e = SimError::Lsq {
            cycle: 15,
            error: LsqError {
                seq: 4,
                detail: "bad".into(),
            },
            snapshot: Box::default(),
        };
        let shown = format!("{e}");
        assert!(shown.contains("seq 4") && shown.contains("pipeline snapshot"));
    }

    #[test]
    fn snapshot_describes_live_state() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.addi(reg::x(1), reg::x(1), 1);
        a.jmp(top);
        let mut cfg = SimConfig::test();
        cfg.max_instructions = 50;
        let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
        sim.run().expect("bounded run");
        let snap = sim.snapshot();
        assert_eq!(snap.cycle, sim.cycle());
        assert!(snap.rob > 0, "infinite loop keeps the ROB busy");
        let head = snap.head.as_ref().expect("rob non-empty");
        assert!(!head.inst.is_empty());
        let shown = format!("{snap}");
        assert!(shown.contains("pipeline snapshot") && shown.contains("head:"));
    }

    #[test]
    fn fetch_stops_at_program_end_without_halt() {
        // Fall off the end: fetch stalls, rob drains, deadlock guard fires
        // only after its window — use max_instructions to stop first.
        let mut a = Asm::new();
        a.li(reg::x(1), 1);
        a.addi(reg::x(1), reg::x(1), 1);
        a.halt();
        let mut cfg = SimConfig::test();
        cfg.max_instructions = 2;
        let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
        let report = sim.run().expect("run");
        assert!(report.committed_instructions >= 2);
    }

    #[test]
    fn division_occupies_unpipelined_unit() {
        // Two back-to-back divides take at least 2x the divide latency.
        let mut a = Asm::new();
        a.li(reg::x(1), 100);
        a.li(reg::x(2), 3);
        a.sdiv(reg::x(3), reg::x(1), reg::x(2));
        a.sdiv(reg::x(4), reg::x(1), reg::x(2));
        a.halt();
        let cfg = SimConfig::test();
        let div_lat = cfg.fu(regshare_isa::OpClass::IntDiv).latency as u64;
        let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
        let report = sim.run().expect("run");
        assert!(
            report.cycles >= 2 * div_lat,
            "two unpipelined divides must serialize: {} cycles",
            report.cycles
        );
    }

    #[test]
    fn store_load_forwarding_avoids_memory_latency() {
        // A load that forwards from an in-flight store never touches the
        // data memory hierarchy; a cold load to a fresh address pays the
        // full TLB-walk + DRAM round trip. Both programs pay the same
        // cold I-cache miss, so the difference isolates forwarding.
        let run = |forwarded: bool| {
            let mut a = Asm::new();
            a.li(reg::x(1), 0x4_0000);
            a.li(reg::x(2), 99);
            if forwarded {
                a.st(reg::x(2), reg::x(1), 0);
                a.ld(reg::x(3), reg::x(1), 0); // forwards from the store
            } else {
                a.nop();
                a.ld(reg::x(3), reg::x(1), 0); // cold miss all the way down
            }
            a.halt();
            let mut sim = Pipeline::new(a.assemble(), baseline(64), SimConfig::test());
            sim.run().expect("run").cycles
        };
        let fwd = run(true);
        let cold = run(false);
        assert!(
            fwd + 40 <= cold,
            "forwarding should beat a cold load: forwarded {fwd} vs cold {cold}"
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::errors::TraceStage;
    use regshare_core::{BaselineRenamer, RenamerConfig};
    use regshare_isa::{reg, Asm};

    #[test]
    fn trace_records_ordered_stages_per_uop() {
        let mut a = Asm::new();
        a.li(reg::x(1), 3);
        a.addi(reg::x(2), reg::x(1), 4);
        a.mul(reg::x(3), reg::x(1), reg::x(2));
        a.halt();
        let mut cfg = SimConfig::test();
        cfg.trace = true;
        let renamer = Box::new(BaselineRenamer::new(RenamerConfig::baseline(64)));
        let mut sim = Pipeline::new(a.assemble(), renamer, cfg);
        sim.run().expect("run");
        let trace = sim.take_trace();
        assert!(!trace.is_empty());
        // Every committed uop passed all four stages, in time order.
        for seq in 1..=4u64 {
            let stages: Vec<(TraceStage, u64)> = trace
                .iter()
                .filter(|e| e.seq == seq)
                .map(|e| (e.stage, e.cycle))
                .collect();
            assert_eq!(stages.len(), 4, "seq {seq} has {stages:?}");
            for w in stages.windows(2) {
                assert!(w[0].0 < w[1].0, "stage order for seq {seq}: {stages:?}");
                assert!(w[0].1 <= w[1].1, "cycle order for seq {seq}: {stages:?}");
            }
        }
        // Dependent mul issues strictly after its producer's writeback.
        let wb_addi = trace
            .iter()
            .find(|e| e.seq == 2 && e.stage == TraceStage::Writeback)
            .expect("addi writeback")
            .cycle;
        let issue_mul = trace
            .iter()
            .find(|e| e.seq == 3 && e.stage == TraceStage::Issue)
            .expect("mul issue")
            .cycle;
        assert!(issue_mul >= wb_addi);
        // The trace is drained after take_trace.
        assert!(sim.take_trace().is_empty());
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut a = Asm::new();
        a.halt();
        let renamer = Box::new(BaselineRenamer::new(RenamerConfig::baseline(64)));
        let mut sim = Pipeline::new(a.assemble(), renamer, SimConfig::test());
        sim.run().expect("run");
        assert!(sim.take_trace().is_empty());
    }
}
