//! The unified mis-speculation recovery path.
//!
//! Every flush in the simulator — branch mispredicts resolved at
//! writeback, injected squash storms, asynchronous interrupts, and
//! precise exceptions at commit — funnels through
//! [`squash_younger_than`]: one architectural walk (ROB/IQ/LSQ squash,
//! rename checkpoint unwind, shadow-cell recover commands) whose cycle
//! cost is delegated to the configured [`RecoveryPolicy`]. The walk is
//! per hardware thread: only the squashing thread's ROB partition,
//! LSQ, latches, and rename checkpoints are touched, while the shared
//! scoreboard drops exactly that thread's squashed waiters. The
//! redirect paths that also re-steer fetch share
//! [`redirect_after_squash`].

use crate::core_state::{CoreState, StageIo};
use crate::inject::InjectKind;
use crate::policy::RecoveryPolicy;
use crate::profile::StageSlot;
use regshare_core::UopKind;

/// Squashes every micro-op of thread `tid` with a sequence number
/// greater than `seq`: ROB and issue-queue entries, scoreboard waiters,
/// unresolved branches, LSQ entries and the thread's front-end latches,
/// then unwinds the thread's rename checkpoints and executes the
/// shadow-cell recover commands the renamer reports. Returns the extra
/// redirect cycles the [`RecoveryPolicy`] charges for the restore.
pub(crate) fn squash_younger_than(
    core: &mut CoreState,
    lat: &mut [StageIo],
    policy: &dyn RecoveryPolicy,
    tid: usize,
    seq: u64,
) -> u32 {
    let single = core.threads.len() == 1;
    let mut squashed = 0u64;
    {
        // Split borrows: the ROB walk mutates this thread's partition
        // while repairing the shared issue-queue accounting.
        let CoreState {
            threads,
            iq_len,
            ready_q,
            squash_scratch,
            ..
        } = core;
        let ctx = &mut threads[tid];
        squash_scratch.clear();
        while matches!(ctx.rob.back(), Some(e) if e.seq > seq) {
            let Some(e) = ctx.rob.pop_back() else { break };
            squashed += 1;
            if !single {
                squash_scratch.push(e.seq);
            }
            if !e.issued {
                *iq_len -= 1;
                if e.pending_srcs == 0 {
                    ready_q.remove(e.seq);
                }
            }
        }
    }
    core.profile.add_work(StageSlot::Housekeeping, squashed);
    // Squashed consumers still parked in the wakeup network must not
    // be woken by surviving producers. With one thread every younger
    // seq belongs to it; with several, other threads' younger micro-ops
    // survive, so only the exact squashed set is drained.
    if single {
        core.scoreboard.drain_waiters_after(seq);
    } else {
        // Popped youngest-first: reverse into ascending order.
        core.squash_scratch.reverse();
        let scratch = std::mem::take(&mut core.squash_scratch);
        core.scoreboard.drain_waiters_in(&scratch);
        core.squash_scratch = scratch;
    }
    core.threads[tid].unresolved_branches.retain_le(seq);
    core.threads[tid].lsq.squash_after(seq);
    // An abandoned fill must not satisfy a later fetch of the same PC.
    core.threads[tid].pending_fill = None;
    lat[tid].fetched.clear();
    lat[tid].decoded.clear();
    let hart = core.threads[tid].hart;
    let outcome = core.renamer.squash_after_on(hart, seq);
    let mut recovered = 0u32;
    for &tag in &outcome.recovers {
        if core.rf[tag.class.index()].recover(tag.preg, tag.version) {
            recovered += 1;
        }
    }
    core.shadow_recovers += recovered as u64;
    policy.extra_cycles(recovered, &core.config)
}

/// A squash followed by a fetch redirect: flush everything of thread
/// `tid` younger than `seq`, re-steer that thread's fetch to
/// `resume_pc`, and extend its fetch stall by `penalty` plus the
/// policy's recovery charge. The arch-state diff against the oracle is
/// armed for the end of the cycle.
pub(crate) fn redirect_after_squash(
    core: &mut CoreState,
    lat: &mut [StageIo],
    policy: &dyn RecoveryPolicy,
    tid: usize,
    seq: u64,
    resume_pc: u64,
    penalty: u32,
) {
    let extra = squash_younger_than(core, lat, policy, tid, seq);
    core.threads[tid].fetch_pc = Some(resume_pc);
    core.threads[tid].fetch_stall_until = core.threads[tid]
        .fetch_stall_until
        .max(core.cycle + penalty as u64 + extra as u64);
    core.pending_verify = true;
}

/// Translates due schedule entries into armed one-shot flags and
/// executes squash storms on the spot.
pub(crate) fn poll_injections(
    core: &mut CoreState,
    lat: &mut [StageIo],
    policy: &dyn RecoveryPolicy,
) {
    let mut storms: Vec<u8> = Vec::new();
    {
        let Some(inj) = &mut core.inject else { return };
        while let Some(e) = inj.events.get(inj.next) {
            if e.cycle > core.cycle {
                break;
            }
            inj.next += 1;
            match e.kind {
                InjectKind::Interrupt => inj.pending_interrupt = true,
                InjectKind::LoadFault => inj.armed_load_fault = true,
                InjectKind::StoreFault => inj.armed_store_fault = true,
                InjectKind::BranchFlip => inj.armed_flip = true,
                InjectKind::SquashStorm => storms.push(e.pick),
            }
        }
    }
    for pick in storms {
        squash_storm(core, lat, policy, pick);
    }
}

/// Squashes everything younger than a completed in-flight micro-op,
/// exactly as a resolving branch would, and refetches from its
/// successor. Candidates are drawn from every thread's ROB partition in
/// thread order and restricted to done, exception-free `Main` micro-ops
/// so the cut point's `next_pc` is an architecturally valid resume
/// address; the squash stays within the picked thread.
fn squash_storm(core: &mut CoreState, lat: &mut [StageIo], policy: &dyn RecoveryPolicy, pick: u8) {
    let mut candidates: Vec<(usize, u64, u64)> = Vec::new();
    for (tid, ctx) in core.threads.iter().enumerate() {
        candidates.extend(
            ctx.rob
                .iter()
                .filter(|e| e.kind == UopKind::Main && e.done && !e.exception && !e.d.is_halt())
                .map(|e| (tid, e.seq, e.next_pc)),
        );
    }
    if candidates.is_empty() {
        return;
    }
    let (tid, seq, next_pc) = candidates[pick as usize % candidates.len()];
    let penalty = core.config.mispredict_penalty;
    redirect_after_squash(core, lat, policy, tid, seq, next_pc, penalty);
    if let Some(inj) = &mut core.inject {
        inj.stats.squash_storms += 1;
    }
}

/// Delivers a pending asynchronous interrupt: flush thread 0's entire
/// speculative window and refetch from its oldest unretired
/// instruction. Runs after writeback so an interrupt armed by a
/// misprediction (`interrupts_on_mispredict`) lands in the same cycle
/// as the branch's own squash — nested recovery. Injection targets
/// thread 0 by construction; the harness runs fault campaigns
/// single-threaded.
pub(crate) fn deliver_pending_interrupt(
    core: &mut CoreState,
    lat: &mut [StageIo],
    policy: &dyn RecoveryPolicy,
) {
    if !core.inject.as_ref().is_some_and(|i| i.pending_interrupt) {
        return;
    }
    if let Some(inj) = &mut core.inject {
        inj.pending_interrupt = false;
    }
    // The precise resume point: the oldest in-flight instruction,
    // wherever it is in the pipe, else wherever fetch would go next.
    let resume = core.threads[0]
        .rob
        .front()
        .map(|e| e.pc)
        .or_else(|| lat[0].decoded.front().map(|f| f.pc))
        .or_else(|| lat[0].fetched.front().map(|f| f.pc))
        .or(core.threads[0].fetch_pc);
    let Some(resume) = resume else {
        return; // nothing in flight and nothing to fetch: no-op
    };
    let squash_seq = core.threads[0]
        .rob
        .front()
        .map(|e| e.seq.saturating_sub(1))
        .unwrap_or(core.next_seq);
    let penalty = core.config.exception_penalty;
    redirect_after_squash(core, lat, policy, 0, squash_seq, resume, penalty);
    if let Some(inj) = &mut core.inject {
        inj.stats.interrupts += 1;
    }
}
