//! Simulator configuration (Table I of the paper).

use crate::SimError;
use regshare_isa::{OpClass, MAX_HARTS};
use regshare_mem::HierarchyConfig;
use serde::{Deserialize, Serialize};

/// Which order the issue stage considers operand-ready micro-ops in
/// (the [`crate::IssueSelect`] implementation to instantiate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IssuePolicyKind {
    /// Oldest (lowest sequence number) first — the classic age-ordered
    /// select matrix, and the behaviour the paper's results assume.
    #[default]
    OldestFirst,
    /// Youngest first — a deliberately adversarial select order that
    /// exercises dependence tracking under maximal reordering.
    YoungestFirst,
}

/// How mis-speculation recovery is charged (the
/// [`crate::RecoveryPolicy`] implementation to instantiate). Both
/// policies restore identical architectural state; they differ only in
/// the extra redirect cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicyKind {
    /// Walk the rename checkpoints youngest-first and charge
    /// `SimConfig::recover_bandwidth` shadow-cell recover commands per
    /// cycle (§IV-C1) — the paper's model and the default.
    #[default]
    CheckpointWalk,
    /// Squash-all: a flash restore of every shadow cell inside the
    /// redirect bubble, charging no extra cycles — the idealised
    /// checkpoint-RAM recovery conventional cores approximate.
    SquashAll,
}

/// Which hardware thread gets the fetch stage each cycle when several
/// are resident (the [`crate::FetchPolicy`] implementation to
/// instantiate). Irrelevant — and byte-identical — with one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FetchPolicyKind {
    /// Rotate through the threads cycle by cycle, skipping ineligible
    /// ones — the simplest fair arbiter, and the default.
    #[default]
    RoundRobin,
    /// ICOUNT (Tullsen et al., ISCA '96): fetch for the eligible thread
    /// with the fewest micro-ops in flight, so fast-moving threads are
    /// not starved by a stalled one clogging the shared window.
    Icount,
}

/// One functional-unit pool: how many units execute an [`OpClass`], at
/// what latency, and whether they accept a new operation every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuConfig {
    /// Number of identical units.
    pub count: usize,
    /// Execution latency in cycles.
    pub latency: u32,
    /// `true` = fully pipelined (initiation interval 1); `false` = the
    /// unit is busy for the whole latency (divides).
    pub pipelined: bool,
}

/// Full simulator configuration; [`SimConfig::default`] reproduces
/// Table I of the paper (2 GHz ARM-class core).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Resident hardware threads (SMT contexts) sharing the pipeline.
    /// Each thread gets its own rename/retire maps, ROB partition and
    /// load/store-queue partition; the physical register file, issue
    /// queue, functional units and predictors are shared.
    pub threads: usize,
    /// Fetch-thread arbitration when `threads > 1`.
    pub fetch_policy: FetchPolicyKind,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Fetch-queue capacity (32 in Table I).
    pub fetch_queue: usize,
    /// Instructions decoded per cycle (3 in Table I).
    pub decode_width: usize,
    /// Instructions renamed/dispatched per cycle (3 in Table I).
    pub rename_width: usize,
    /// Micro-ops issued per cycle.
    pub issue_width: usize,
    /// Micro-ops committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries (128 in Table I).
    pub rob_entries: usize,
    /// Issue-queue entries (40 in Table I).
    pub iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Minimum branch-misprediction redirect penalty in cycles (15 in
    /// Table I); shadow-cell recovery adds on top for the proposed scheme.
    pub mispredict_penalty: u32,
    /// Fixed cost of entering/leaving an exception handler.
    pub exception_penalty: u32,
    /// Shadow-cell recover commands executed per recovery cycle.
    pub recover_bandwidth: u32,
    /// Issue-stage selection order.
    pub issue_policy: IssuePolicyKind,
    /// Mis-speculation recovery timing model.
    pub recovery_policy: RecoveryPolicyKind,
    /// Functional-unit pools.
    pub fus: Vec<(OpClass, FuConfig)>,
    /// Branch predictor configuration.
    pub bpred: crate::BranchPredictorConfig,
    /// Memory hierarchy configuration.
    pub mem: HierarchyConfig,
    /// Stop after this many committed instructions (0 = unlimited).
    pub max_instructions: u64,
    /// Hard safety limit on simulated cycles (0 = unlimited).
    pub max_cycles: u64,
    /// Step a functional `Machine` in lockstep at commit and report any
    /// divergence as an error. Slower; invaluable in tests.
    pub check_oracle: bool,
    /// Cycle interval between register-bank occupancy samples (Fig. 9);
    /// 0 disables sampling.
    pub occupancy_sample_interval: u64,
    /// Cycle interval between invariant audits of the renamer's free-list
    /// / PRT / map-table bookkeeping and the pipeline's IQ/ROB wakeup
    /// state; 0 (the default) disables auditing. A violation stops the
    /// run with `SimError::Invariant` and a pipeline snapshot.
    pub audit_interval: u64,
    /// Data addresses whose page faults once, on first access (exercises
    /// precise-exception recovery).
    pub inject_page_faults: Vec<u64>,
    /// Record per-micro-op stage timestamps (dispatch/issue/writeback/
    /// commit), retrievable with `Pipeline::take_trace`. Capped at
    /// 100 000 events to bound memory.
    pub trace: bool,
    /// Attribute host wall-clock time to pipeline stages (the
    /// [`crate::StageProfile`] in the report). Reads the host clock per
    /// stage per cycle, so it is off by default; the deterministic
    /// per-stage work counters are always on regardless.
    #[serde(default)]
    pub profile: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            threads: 1,
            fetch_policy: FetchPolicyKind::default(),
            fetch_width: 3,
            fetch_queue: 32,
            decode_width: 3,
            rename_width: 3,
            issue_width: 6,
            commit_width: 3,
            rob_entries: 128,
            iq_entries: 40,
            lq_entries: 32,
            sq_entries: 32,
            mispredict_penalty: 15,
            exception_penalty: 40,
            recover_bandwidth: 4,
            issue_policy: IssuePolicyKind::default(),
            recovery_policy: RecoveryPolicyKind::default(),
            fus: vec![
                (
                    OpClass::IntAlu,
                    FuConfig {
                        count: 2,
                        latency: 1,
                        pipelined: true,
                    },
                ),
                (
                    OpClass::IntMul,
                    FuConfig {
                        count: 1,
                        latency: 3,
                        pipelined: true,
                    },
                ),
                (
                    OpClass::IntDiv,
                    FuConfig {
                        count: 1,
                        latency: 12,
                        pipelined: false,
                    },
                ),
                (
                    OpClass::FpAlu,
                    FuConfig {
                        count: 2,
                        latency: 3,
                        pipelined: true,
                    },
                ),
                (
                    OpClass::FpMul,
                    FuConfig {
                        count: 1,
                        latency: 4,
                        pipelined: true,
                    },
                ),
                (
                    OpClass::FpDiv,
                    FuConfig {
                        count: 1,
                        latency: 12,
                        pipelined: false,
                    },
                ),
                (
                    OpClass::Load,
                    FuConfig {
                        count: 2,
                        latency: 1,
                        pipelined: true,
                    },
                ),
                (
                    OpClass::Store,
                    FuConfig {
                        count: 1,
                        latency: 1,
                        pipelined: true,
                    },
                ),
                (
                    OpClass::Branch,
                    FuConfig {
                        count: 1,
                        latency: 1,
                        pipelined: true,
                    },
                ),
            ],
            bpred: crate::BranchPredictorConfig::default(),
            mem: HierarchyConfig::default(),
            max_instructions: 0,
            max_cycles: 0,
            check_oracle: false,
            occupancy_sample_interval: 0,
            audit_interval: 0,
            inject_page_faults: Vec::new(),
            trace: false,
            profile: false,
        }
    }
}

impl SimConfig {
    /// The functional-unit pool for an op class.
    ///
    /// # Panics
    ///
    /// Panics if the class has no configured pool.
    pub fn fu(&self, class: OpClass) -> FuConfig {
        self.fus
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, f)| *f)
            .unwrap_or_else(|| panic!("no functional unit configured for {class}"))
    }

    /// A configuration for fast unit tests: oracle checking on, modest
    /// structure sizes, tight cycle cap.
    pub fn test() -> Self {
        SimConfig {
            check_oracle: true,
            max_cycles: 2_000_000,
            ..SimConfig::default()
        }
    }

    /// Scales every in-order stage to `width` instructions per cycle
    /// (fetch/decode/rename/commit) with a `2×width` out-of-order issue
    /// stage — the machine-width knob of the scaling experiments.
    pub fn with_width(mut self, width: usize) -> Self {
        self.fetch_width = width;
        self.decode_width = width;
        self.rename_width = width;
        self.commit_width = width;
        self.issue_width = 2 * width;
        self
    }

    /// Sets the resident hardware-thread count; pair with a renamer
    /// built for the same count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Checks the configuration for values that would otherwise surface
    /// as panics (or silent nonsense) deep inside the pipeline: zero
    /// stage widths, a thread count outside `1..=MAX_HARTS`, or shared
    /// structures too small to partition across the threads. Every
    /// pipeline, sampled-simulation and service entry point calls this
    /// before building hardware state.
    pub fn validate(&self) -> Result<(), SimError> {
        let fail = |what: String| Err(SimError::Config { what });
        if !(1..=MAX_HARTS).contains(&self.threads) {
            return fail(format!(
                "threads must be in 1..={MAX_HARTS}, got {}",
                self.threads
            ));
        }
        for (name, value) in [
            ("fetch_width", self.fetch_width),
            ("decode_width", self.decode_width),
            ("rename_width", self.rename_width),
            ("issue_width", self.issue_width),
            ("commit_width", self.commit_width),
            ("fetch_queue", self.fetch_queue),
            ("iq_entries", self.iq_entries),
        ] {
            if value == 0 {
                return fail(format!("{name} must be nonzero"));
            }
        }
        // Each thread's ROB partition must hold at least one worst-case
        // rename group, or rename can never make progress.
        let rob_part = self.rob_entries / self.threads;
        if rob_part < crate::stages::WORST_CASE_UOPS {
            return fail(format!(
                "rob_entries ({}) split across {} thread(s) leaves {rob_part} \
                 entries per thread; at least {} are needed",
                self.rob_entries,
                self.threads,
                crate::stages::WORST_CASE_UOPS
            ));
        }
        if self.lq_entries / self.threads == 0 || self.sq_entries / self.threads == 0 {
            return fail(format!(
                "lq_entries ({}) and sq_entries ({}) must provide at least one \
                 entry per thread ({} threads)",
                self.lq_entries, self.sq_entries, self.threads
            ));
        }
        if self.iq_entries < self.rename_width {
            return fail(format!(
                "iq_entries ({}) must not be smaller than rename_width ({})",
                self.iq_entries, self.rename_width
            ));
        }
        Ok(())
    }

    /// A safely-buildable stand-in for an invalid configuration: the
    /// pipeline constructor keeps its infallible signature by building
    /// this instead and holding the [`SimError::Config`] until `run`.
    pub(crate) fn sanitized(&self) -> SimConfig {
        let mut c = self.clone();
        c.threads = c.threads.clamp(1, MAX_HARTS);
        c.fetch_width = c.fetch_width.max(1);
        c.decode_width = c.decode_width.max(1);
        c.rename_width = c.rename_width.max(1);
        c.issue_width = c.issue_width.max(1);
        c.commit_width = c.commit_width.max(1);
        c.fetch_queue = c.fetch_queue.max(1);
        c.iq_entries = c.iq_entries.max(c.rename_width);
        c.rob_entries = c
            .rob_entries
            .max(crate::stages::WORST_CASE_UOPS * c.threads);
        c.lq_entries = c.lq_entries.max(c.threads);
        c.sq_entries = c.sq_entries.max(c.threads);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let c = SimConfig::default();
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.iq_entries, 40);
        assert_eq!(c.decode_width, 3);
        assert_eq!(c.rename_width, 3);
        assert_eq!(c.fetch_queue, 32);
        assert_eq!(c.mispredict_penalty, 15);
    }

    #[test]
    fn validate_accepts_default_and_rejects_nonsense() {
        assert!(SimConfig::default().validate().is_ok());
        for threads in 1..=MAX_HARTS {
            assert!(SimConfig::default()
                .with_threads(threads)
                .validate()
                .is_ok());
        }

        let reject = |c: SimConfig, needle: &str| {
            let err = c.validate().expect_err("should be rejected");
            match err {
                SimError::Config { what } => {
                    assert!(what.contains(needle), "{what:?} lacks {needle:?}")
                }
                other => panic!("expected SimError::Config, got {other:?}"),
            }
        };
        reject(SimConfig::default().with_threads(0), "threads");
        reject(SimConfig::default().with_threads(MAX_HARTS + 1), "threads");
        reject(SimConfig::default().with_width(0), "fetch_width");
        let mut c = SimConfig::default();
        c.commit_width = 0;
        reject(c, "commit_width");
        let mut c = SimConfig::default().with_threads(4);
        c.rob_entries = 8;
        reject(c, "rob_entries");
        let mut c = SimConfig::default().with_threads(4);
        c.lq_entries = 2;
        reject(c, "lq_entries");
    }

    #[test]
    fn with_width_scales_every_stage() {
        let c = SimConfig::default().with_width(8);
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.decode_width, 8);
        assert_eq!(c.rename_width, 8);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.issue_width, 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn sanitized_always_validates() {
        let mut c = SimConfig::default().with_width(0).with_threads(9);
        c.rob_entries = 0;
        c.iq_entries = 0;
        c.lq_entries = 0;
        c.sq_entries = 0;
        assert!(c.validate().is_err());
        assert!(c.sanitized().validate().is_ok());
    }

    #[test]
    fn fu_lookup() {
        let c = SimConfig::default();
        assert_eq!(c.fu(OpClass::IntAlu).count, 2);
        assert!(!c.fu(OpClass::IntDiv).pipelined);
    }

    #[test]
    fn every_op_class_has_a_unit() {
        let c = SimConfig::default();
        for class in [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::FpAlu,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
        ] {
            assert!(c.fu(class).count > 0);
        }
    }
}
