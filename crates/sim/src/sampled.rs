//! SMARTS-style sampled simulation: periodic detailed windows over a
//! functionally-warmed stream.
//!
//! A [`SamplePlan`] places detailed windows at fixed multiples of its
//! period. The engine makes **one** sequential functional pass over the
//! stream ([`FunctionalWarmer`]), snapshotting a [`Checkpoint`] a short
//! *lead* before each window; each window then runs independently from
//! its checkpoint clone — functional lead (warming the branch and reuse
//! predictors), detailed warmup (timing discarded), detailed measurement
//! (one IPC observation into a [`Welford`] estimator).
//!
//! Because every window starts from a checkpoint *clone* at a position
//! that is a pure function of the plan, a window's result depends only
//! on `(program, plan, config)` — never on which worker ran it or in
//! what order. That is the determinism argument behind time-parallel
//! slicing: results are byte-identical for any worker count.
//!
//! Checkpoints are materialized in bounded batches (a clone holds the
//! machine's memory image plus the cache hierarchy) so paper-scale runs
//! with hundreds of windows never hold more than [`SampledConfig::batch`]
//! snapshots at once.

use crate::bpred::BranchPredictor;
use crate::warm::{Checkpoint, FunctionalWarmer, Warmable};
use crate::{Pipeline, SimConfig, SimError};
use regshare_core::{Renamer, RenamerConfig, ReuseWarmer};
use regshare_isa::Program;
use regshare_stats::{SamplePlan, Welford};

/// Functional lead-in instructions warming the small predictors before
/// each window. Gshare/BTB and the reuse predictors converge well within
/// this horizon.
pub const DEFAULT_LEAD: u64 = 100_000;

/// Checkpoints materialized at once (memory bound for the batched
/// warming pass).
pub const DEFAULT_BATCH: usize = 8;

/// How a sampled run carves the stream into detailed windows.
#[derive(Debug, Clone, Copy)]
pub struct SampledConfig {
    /// Window placement and sizing.
    pub plan: SamplePlan,
    /// Functional predictor-warming lead per window, in instructions.
    pub lead: u64,
    /// Checkpoints held in memory at once.
    pub batch: usize,
}

impl SampledConfig {
    /// A sampled-run configuration with default lead and batching.
    pub fn new(plan: SamplePlan) -> Self {
        SampledConfig {
            plan,
            lead: DEFAULT_LEAD,
            batch: DEFAULT_BATCH,
        }
    }
}

/// One detailed window: position plus per-phase instruction budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// First instruction of the detailed window.
    pub start: u64,
    /// Functional lead-in before `start` (clamped at stream begin).
    pub lead: u64,
    /// Detailed instructions whose timing is discarded.
    pub warmup: u64,
    /// Detailed instructions measured for the IPC observation.
    pub measure: u64,
}

/// The windows of a sampled run over `scale` instructions. Positions are
/// a pure function of `(plan, scale, lead)` — the determinism anchor.
pub fn window_specs(plan: &SamplePlan, scale: u64, lead: u64) -> Vec<WindowSpec> {
    plan.window_starts(scale)
        .into_iter()
        .map(|start| WindowSpec {
            start,
            lead: lead.min(start),
            warmup: plan.warmup,
            measure: plan.measure,
        })
        .collect()
}

/// A window ready to run: its spec plus the checkpoint it starts from.
#[derive(Debug, Clone)]
pub struct WindowJob {
    /// Functional snapshot at `spec.start - spec.lead`.
    pub checkpoint: Checkpoint,
    /// The window to run from it.
    pub spec: WindowSpec,
}

/// What one detailed window measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowResult {
    /// Window position (first measured-or-warmed instruction).
    pub start: u64,
    /// Instructions committed in the measured portion.
    pub instructions: u64,
    /// Cycles spent in the measured portion.
    pub cycles: u64,
    /// Micro-ops committed across warmup + measurement.
    pub uops: u64,
    /// Host seconds of detailed simulation (warmup + measurement).
    pub wall_seconds: f64,
}

impl WindowResult {
    /// The window's IPC observation.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Runs one detailed window from its checkpoint: functional lead →
/// detailed warmup → detailed measurement.
///
/// The caller provides a *fresh* renamer; the lead-warmed reuse
/// predictors are installed into it before the pipeline starts.
///
/// # Errors
///
/// Propagates detailed-simulation failures ([`SimError`]).
///
/// # Panics
///
/// Panics if the checkpoint is not at `spec.start - spec.lead`, or on a
/// functional execution fault during the lead (program bug).
pub fn run_window(
    job: &WindowJob,
    mut renamer: Box<dyn Renamer>,
    renamer_config: &RenamerConfig,
    mut config: SimConfig,
) -> Result<WindowResult, SimError> {
    let spec = job.spec;
    assert_eq!(
        job.checkpoint.instruction,
        spec.start - spec.lead,
        "checkpoint not at the window's lead start"
    );
    let mut machine = job.checkpoint.machine.clone();
    let mut mem = job.checkpoint.mem.clone();
    let mut bpred = BranchPredictor::new(config.bpred);
    let mut reuse = ReuseWarmer::new(renamer_config);
    if spec.lead > 0 && !machine.is_halted() {
        machine
            .run_observe(spec.start, |r| {
                mem.warm_retired(r);
                bpred.warm_retired(r);
                reuse.warm_retired(r);
            })
            .expect("functional lead execution");
    }
    if machine.is_halted() {
        // The program ended during (or before) the lead: the window has
        // nothing to measure. A zero-cycle result is excluded from the
        // IPC estimator by the caller. This arises when a clamped lead
        // hides the halt from the warming pass's own halt check (the
        // checkpoint sits before the halt, the window start after it).
        return Ok(WindowResult {
            start: spec.start,
            instructions: 0,
            cycles: 0,
            uops: 0,
            wall_seconds: 0.0,
        });
    }
    renamer.install_predictors(reuse.predictor(), reuse.single_use());
    // The budget is window-local: the pipeline starts at zero committed
    // instructions regardless of the checkpoint's stream position.
    config.max_instructions = if spec.warmup > 0 {
        spec.warmup
    } else {
        spec.measure
    };
    let mut pipe =
        Pipeline::from_checkpoint(&machine, mem.into_hierarchy(), bpred, renamer, config);
    let warm_report = if spec.warmup > 0 {
        let r = pipe.run()?;
        pipe.set_max_instructions(spec.warmup + spec.measure);
        r
    } else {
        pipe.report()
    };
    let full = if warm_report.halted {
        warm_report.clone()
    } else {
        pipe.run()?
    };
    Ok(WindowResult {
        start: spec.start,
        instructions: full.committed_instructions - warm_report.committed_instructions,
        cycles: full.cycles - warm_report.cycles,
        uops: full.committed_uops,
        wall_seconds: full.wall_seconds,
    })
}

/// The aggregate of a sampled run.
#[derive(Debug, Clone)]
pub struct SampledReport {
    /// Streaming estimator over per-window IPC observations.
    pub ipc: Welford,
    /// Every window's measurement, in stream order.
    pub windows: Vec<WindowResult>,
    /// Instructions fast-forwarded by the sequential warming pass.
    pub warm_instructions: u64,
    /// Host seconds of the sequential warming pass.
    pub warm_seconds: f64,
    /// Instructions measured across all windows.
    pub detailed_instructions: u64,
    /// Micro-ops committed across all windows (warmup included).
    pub detailed_uops: u64,
    /// Cycles across all measured portions.
    pub detailed_cycles: u64,
    /// Host seconds of detailed simulation across all windows.
    pub detailed_seconds: f64,
}

impl SampledReport {
    /// Mean per-window IPC.
    pub fn ipc_mean(&self) -> f64 {
        self.ipc.mean()
    }

    /// 95% confidence half-width on the mean IPC.
    pub fn ipc_ci95(&self) -> f64 {
        self.ipc.ci95_half_width()
    }

    /// Whether `ipc` lies inside the 95% confidence interval.
    pub fn ci_covers(&self, ipc: f64) -> bool {
        (self.ipc_mean() - ipc).abs() <= self.ipc_ci95()
    }

    /// Functional-warming throughput, instructions per host second.
    pub fn warm_instructions_per_second(&self) -> f64 {
        if self.warm_seconds <= 0.0 {
            0.0
        } else {
            self.warm_instructions as f64 / self.warm_seconds
        }
    }
}

/// Runs the sampled engine: the sequential warming pass feeding batches
/// of [`WindowJob`]s to `run_batch`, which must return one result per
/// job **in input order** (delegate to a deterministic parallel map for
/// time-parallel slicing, or run them inline).
///
/// # Panics
///
/// Panics on a functional execution fault during warming, or if
/// `run_batch` drops results.
pub fn sample_windows(
    program: &Program,
    config: &SimConfig,
    sample: &SampledConfig,
    scale: u64,
    mut run_batch: impl FnMut(Vec<WindowJob>) -> Vec<WindowResult>,
) -> SampledReport {
    let specs = window_specs(&sample.plan, scale, sample.lead);
    let mut warmer = FunctionalWarmer::new(program.clone(), config);
    let mut windows: Vec<WindowResult> = Vec::with_capacity(specs.len());
    for chunk in specs.chunks(sample.batch.max(1)) {
        let mut jobs = Vec::with_capacity(chunk.len());
        let mut halted = false;
        for spec in chunk {
            let at = spec.start - spec.lead;
            warmer.run_until(at).expect("functional warming");
            if warmer.retired() < at {
                // The program halted before this window's lead; no
                // later window can start either. The jobs already
                // collected for this chunk still run below.
                halted = true;
                break;
            }
            jobs.push(WindowJob {
                checkpoint: warmer.checkpoint(),
                spec: *spec,
            });
        }
        let n = jobs.len();
        if n > 0 {
            let results = run_batch(jobs);
            assert_eq!(results.len(), n, "run_batch must return one result per job");
            windows.extend(results);
        }
        if halted || n == 0 {
            break;
        }
    }
    let mut ipc = Welford::new();
    let mut detailed_instructions = 0;
    let mut detailed_uops = 0;
    let mut detailed_cycles = 0;
    let mut detailed_seconds = 0.0;
    for w in &windows {
        if w.cycles > 0 {
            ipc.record(w.ipc());
        }
        detailed_instructions += w.instructions;
        detailed_uops += w.uops;
        detailed_cycles += w.cycles;
        detailed_seconds += w.wall_seconds;
    }
    SampledReport {
        ipc,
        windows,
        warm_instructions: warmer.retired(),
        warm_seconds: warmer.wall_seconds(),
        detailed_instructions,
        detailed_uops,
        detailed_cycles,
        detailed_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_core::{BaselineRenamer, ReuseRenamer};
    use regshare_isa::{reg, Asm};

    fn loop_program(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(reg::x(1), iters);
        a.li(reg::x(2), 0x4_0000);
        let top = a.label();
        a.bind(top);
        a.ld(reg::x(3), reg::x(2), 0);
        a.addi(reg::x(3), reg::x(3), 7);
        a.mul(reg::x(4), reg::x(3), reg::x(3));
        a.st(reg::x(4), reg::x(2), 8);
        a.subi(reg::x(1), reg::x(1), 1);
        a.bne(reg::x(1), reg::zero(), top);
        a.halt();
        a.assemble()
    }

    fn sampled(scheme_reuse: bool, scale: u64) -> SampledReport {
        let program = loop_program(1_000_000);
        let config = SimConfig {
            check_oracle: true,
            max_cycles: 0,
            ..SimConfig::default()
        };
        let rconfig = if scheme_reuse {
            RenamerConfig::paper(64)
        } else {
            RenamerConfig::baseline(64)
        };
        let sample = SampledConfig {
            plan: SamplePlan::new(2_000, 200, 500),
            lead: 1_000,
            batch: 3,
        };
        sample_windows(&program, &config, &sample, scale, |jobs| {
            jobs.iter()
                .map(|job| {
                    let renamer: Box<dyn Renamer> = if scheme_reuse {
                        Box::new(ReuseRenamer::new(rconfig.clone()))
                    } else {
                        Box::new(BaselineRenamer::new(rconfig.clone()))
                    };
                    run_window(job, renamer, &rconfig, config.clone()).expect("window")
                })
                .collect()
        })
    }

    #[test]
    fn window_specs_clamp_the_lead_at_stream_begin() {
        let specs = window_specs(&SamplePlan::new(1_000, 100, 200), 3_000, 400);
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].lead, 0, "window at 0 has nothing to lead over");
        assert_eq!(specs[1].lead, 400);
        assert_eq!(specs[1].start, 1_000);
    }

    #[test]
    fn sampled_run_measures_every_window_with_oracle_checking() {
        let r = sampled(true, 20_000);
        assert_eq!(r.windows.len(), 10);
        assert_eq!(r.ipc.count(), 10);
        assert!(r.ipc_mean() > 0.1, "steady loop has nonzero IPC");
        assert!(r.warm_instructions >= 18_000 - 1_000);
        for w in &r.windows {
            // Commit width lets each budget boundary overshoot by a
            // couple of instructions, in either direction of the delta.
            assert!(w.instructions >= 495 && w.instructions < 505);
            assert!(w.cycles > 0);
        }
        assert_eq!(
            r.detailed_instructions,
            r.windows.iter().map(|w| w.instructions).sum::<u64>()
        );
    }

    #[test]
    fn sampled_results_are_bit_identical_across_runs() {
        let a = sampled(true, 12_000);
        let b = sampled(true, 12_000);
        // wall_seconds is host time; everything simulated must be exact.
        let key = |r: &SampledReport| {
            r.windows
                .iter()
                .map(|w| (w.start, w.instructions, w.cycles, w.uops))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(a.ipc_mean().to_bits(), b.ipc_mean().to_bits());
    }

    #[test]
    fn baseline_scheme_samples_too() {
        let r = sampled(false, 8_000);
        assert_eq!(r.windows.len(), 4);
        assert!(r.ipc_mean() > 0.1);
    }

    #[test]
    fn window_entirely_past_the_halt_reports_zero() {
        // A clamped lead can put the checkpoint before the program's
        // halt while the window start lies beyond it; the window must
        // report a zero (excluded) observation, not deadlock.
        let program = loop_program(100); // ~600 instructions total
        let config = SimConfig::default();
        let rconfig = RenamerConfig::baseline(64);
        let warmer = FunctionalWarmer::new(program, &config);
        let job = WindowJob {
            checkpoint: warmer.checkpoint(), // at instruction 0
            spec: WindowSpec {
                start: 5_000,
                lead: 5_000,
                warmup: 50,
                measure: 100,
            },
        };
        let renamer = Box::new(BaselineRenamer::new(rconfig.clone()));
        let r = run_window(&job, renamer, &rconfig, config).expect("zero window");
        assert_eq!(r.instructions, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn halting_stream_stops_cleanly() {
        let program = loop_program(100); // ~600 instructions total
        let config = SimConfig::default();
        let rconfig = RenamerConfig::baseline(64);
        let sample = SampledConfig {
            plan: SamplePlan::new(400, 50, 100),
            lead: 100,
            batch: 4,
        };
        let r = sample_windows(&program, &config, &sample, 100_000, |jobs| {
            jobs.iter()
                .map(|job| {
                    let renamer = Box::new(BaselineRenamer::new(rconfig.clone()));
                    run_window(job, renamer, &rconfig, config.clone()).expect("window")
                })
                .collect()
        });
        assert!(r.windows.len() <= 2, "halt truncates the window list");
    }
}
