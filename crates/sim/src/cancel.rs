//! Cooperative cancellation for in-flight simulations.
//!
//! A [`CancelToken`] is a shared flag an external supervisor (the job
//! service's deadline reaper, a ctrl-C handler, a test) flips to ask a
//! running [`crate::Pipeline`] to stop. The pipeline polls the flag in
//! its driver loop every [`CANCEL_CHECK_INTERVAL`] cycles and returns
//! [`crate::SimError::Cancelled`], so a timed-out job stops within a
//! bounded number of simulated cycles instead of running to completion.
//!
//! Cancellation never perturbs results: a run either completes with
//! byte-identical output or reports `Cancelled` — there is no partial
//! result path, which is what lets the job service retry cancelled jobs
//! and still promise byte-identical completions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How many cycles may elapse between cancel-flag polls (a power of two
/// so the driver-loop check is a mask test).
pub const CANCEL_CHECK_INTERVAL: u64 = 1024;

/// A shared cancellation flag. Clones observe the same flag; dropping
/// tokens never cancels.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing shared flag (lets a host that already tracks
    /// per-job flags hand the same one to the simulator).
    pub fn from_flag(flag: Arc<AtomicBool>) -> Self {
        CancelToken { flag }
    }

    /// The underlying shared flag.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn from_flag_aliases_the_given_bool() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = CancelToken::from_flag(Arc::clone(&flag));
        flag.store(true, Ordering::Release);
        assert!(t.is_cancelled());
        assert!(t.flag().load(Ordering::Acquire));
    }

    #[test]
    fn interval_is_a_power_of_two() {
        assert!(CANCEL_CHECK_INTERVAL.is_power_of_two());
    }
}
