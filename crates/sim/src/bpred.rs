//! Branch prediction: gshare direction predictor, branch target buffer,
//! and a return-address stack.

use regshare_isa::{Inst, Opcode};
use regshare_stats::Ratio;
use serde::{Deserialize, Serialize};

/// Branch predictor configuration (Table I: 2K-entry BTB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictorConfig {
    /// gshare pattern-history-table entries (2-bit counters).
    pub pht_entries: usize,
    /// Global-history length in bits.
    pub history_bits: u32,
    /// Branch target buffer entries (direct-mapped).
    pub btb_entries: usize,
    /// Return-address stack depth.
    pub ras_depth: usize,
}

impl Default for BranchPredictorConfig {
    fn default() -> Self {
        BranchPredictorConfig {
            pht_entries: 4096,
            history_bits: 8,
            btb_entries: 2048,
            ras_depth: 16,
        }
    }
}

/// The fetch-time prediction for one control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always true for unconditional transfers).
    pub taken: bool,
    /// Predicted target instruction index when taken.
    pub target: u64,
}

/// gshare + BTB + RAS front-end predictor.
///
/// Direct branches use the gshare direction predictor with their decoded
/// target; indirect jumps (`jalr`) use the RAS when they look like
/// returns, falling back to the BTB's last-seen target.
///
/// # Examples
///
/// ```
/// use regshare_sim::{BranchPredictor, BranchPredictorConfig};
/// use regshare_isa::{Inst, Opcode, reg};
///
/// let mut bp = BranchPredictor::new(BranchPredictorConfig::default());
/// let b = Inst::branch(Opcode::Bne, reg::x(1), reg::x(2), 5);
/// let p = bp.predict(10, &b);
/// bp.update(10, &b, true, 5, p);
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchPredictorConfig,
    pht: Vec<u8>,
    history: u64,
    btb: Vec<Option<(u64, u64)>>, // (pc, target)
    ras: Vec<u64>,
    direction: Ratio,
    target: Ratio,
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken counters and empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two.
    pub fn new(config: BranchPredictorConfig) -> Self {
        assert!(
            config.pht_entries.is_power_of_two(),
            "PHT entries must be a power of two"
        );
        assert!(
            config.btb_entries.is_power_of_two(),
            "BTB entries must be a power of two"
        );
        BranchPredictor {
            config,
            pht: vec![1; config.pht_entries],
            history: 0,
            btb: vec![None; config.btb_entries],
            ras: Vec::new(),
            direction: Ratio::new("bpred_direction"),
            target: Ratio::new("bpred_target"),
        }
    }

    fn pht_index(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.config.history_bits) - 1);
        ((pc ^ h) as usize) & (self.pht.len() - 1)
    }

    fn btb_index(&self, pc: u64) -> usize {
        (pc as usize) & (self.btb.len() - 1)
    }

    /// Predicts the control instruction at `pc`. Also performs RAS
    /// push/pop side effects for calls and returns.
    pub fn predict(&mut self, pc: u64, inst: &Inst) -> Prediction {
        match inst.opcode {
            Opcode::Jal => {
                if inst.dst().is_some() {
                    self.push_ras(pc + 1);
                }
                Prediction {
                    taken: true,
                    target: inst.target as u64,
                }
            }
            Opcode::Jalr => {
                // Calls through jalr also push the return address.
                if inst.dst().is_some() {
                    self.push_ras(pc + 1);
                    // An indirect call's target comes from the BTB.
                    let t = self.btb_lookup(pc).unwrap_or(pc + 1);
                    return Prediction {
                        taken: true,
                        target: t,
                    };
                }
                // A plain jalr is treated as a return: prefer the RAS.
                let target = self
                    .ras
                    .pop()
                    .or_else(|| self.btb_lookup(pc))
                    .unwrap_or(pc + 1);
                Prediction {
                    taken: true,
                    target,
                }
            }
            op if op.is_cond_branch() => {
                let taken = self.pht[self.pht_index(pc)] >= 2;
                Prediction {
                    taken,
                    target: inst.target as u64,
                }
            }
            _ => Prediction {
                taken: false,
                target: pc + 1,
            },
        }
    }

    fn push_ras(&mut self, ret: u64) {
        if self.ras.len() == self.config.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(ret);
    }

    fn btb_lookup(&self, pc: u64) -> Option<u64> {
        match self.btb[self.btb_index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Trains the predictor with the resolved outcome and records
    /// accuracy. `prediction` is what [`BranchPredictor::predict`]
    /// returned at fetch.
    pub fn update(
        &mut self,
        pc: u64,
        inst: &Inst,
        taken: bool,
        target: u64,
        prediction: Prediction,
    ) {
        if inst.opcode.is_cond_branch() {
            let idx = self.pht_index(pc);
            let c = &mut self.pht[idx];
            if taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
            self.history = (self.history << 1) | taken as u64;
            self.direction.record(prediction.taken == taken);
        }
        if taken {
            let idx = self.btb_index(pc);
            self.btb[idx] = Some((pc, target));
        }
        if taken || prediction.taken {
            self.target
                .record(prediction.taken == taken && (!taken || prediction.target == target));
        }
    }

    /// Trains the predictor from a functionally-executed control
    /// instruction without recording accuracy statistics.
    ///
    /// Functional warming has no fetch-time prediction to score, so this
    /// performs the same PHT/history/BTB training as
    /// [`BranchPredictor::update`] *and* the RAS side effects that
    /// [`BranchPredictor::predict`] would have applied, leaving the
    /// accuracy ratios untouched for the measurement window.
    pub fn warm(&mut self, pc: u64, inst: &Inst, taken: bool, target: u64) {
        match inst.opcode {
            Opcode::Jal if inst.dst().is_some() => self.push_ras(pc + 1),
            Opcode::Jalr => {
                if inst.dst().is_some() {
                    self.push_ras(pc + 1);
                } else {
                    self.ras.pop();
                }
            }
            op if op.is_cond_branch() => {
                let idx = self.pht_index(pc);
                let c = &mut self.pht[idx];
                if taken {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
                self.history = (self.history << 1) | taken as u64;
            }
            _ => {}
        }
        if taken {
            let idx = self.btb_index(pc);
            self.btb[idx] = Some((pc, target));
        }
    }

    /// Clears accuracy statistics, keeping all trained state.
    pub fn reset_stats(&mut self) {
        self.direction.reset();
        self.target.reset();
    }

    /// Direction-prediction accuracy for conditional branches.
    pub fn direction_accuracy(&self) -> &Ratio {
        &self.direction
    }

    /// Overall control-flow prediction accuracy (direction and target).
    pub fn target_accuracy(&self) -> &Ratio {
        &self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::reg;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BranchPredictorConfig::default())
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut bp = bp();
        let b = Inst::branch(Opcode::Bne, reg::x(1), reg::x(2), 3);
        // Train taken repeatedly — long enough for the global history to
        // saturate so the final prediction hits a trained PHT entry.
        for _ in 0..32 {
            let p = bp.predict(10, &b);
            bp.update(10, &b, true, 3, p);
        }
        assert!(bp.predict(10, &b).taken);
        assert!(bp.direction_accuracy().fraction() > 0.5);
    }

    #[test]
    fn cold_conditional_predicts_not_taken() {
        let mut bp = bp();
        let b = Inst::branch(Opcode::Beq, reg::x(1), reg::x(2), 3);
        assert!(!bp.predict(10, &b).taken);
    }

    #[test]
    fn jal_is_always_taken_with_static_target() {
        let mut bp = bp();
        let j = Inst::jal(None, 42);
        let p = bp.predict(0, &j);
        assert!(p.taken);
        assert_eq!(p.target, 42);
    }

    #[test]
    fn call_return_pair_uses_ras() {
        let mut bp = bp();
        let call = Inst::jal(Some(reg::lr()), 100);
        bp.predict(7, &call); // pushes 8
        let ret = Inst::jalr(None, reg::lr(), 0);
        let p = bp.predict(100, &ret);
        assert_eq!(p.target, 8);
    }

    #[test]
    fn nested_calls_unwind_in_order() {
        let mut bp = bp();
        let call = Inst::jal(Some(reg::lr()), 50);
        bp.predict(1, &call);
        bp.predict(2, &call);
        let ret = Inst::jalr(None, reg::lr(), 0);
        assert_eq!(bp.predict(50, &ret).target, 3);
        assert_eq!(bp.predict(50, &ret).target, 2);
    }

    #[test]
    fn return_without_ras_falls_back_to_btb() {
        let mut bp = bp();
        let ret = Inst::jalr(None, reg::lr(), 0);
        // Cold: falls through.
        assert_eq!(bp.predict(9, &ret).target, 10);
        let p = bp.predict(9, &ret);
        bp.update(9, &ret, true, 77, p);
        assert_eq!(bp.predict(9, &ret).target, 77);
    }

    #[test]
    fn warming_trains_without_recording_stats() {
        let mut bp = bp();
        let b = Inst::branch(Opcode::Bne, reg::x(1), reg::x(2), 3);
        for _ in 0..32 {
            bp.warm(10, &b, true, 3);
        }
        assert_eq!(bp.direction_accuracy().total(), 0);
        assert_eq!(bp.target_accuracy().total(), 0);
        assert!(bp.predict(10, &b).taken, "warming should train the PHT");
    }

    #[test]
    fn warming_maintains_the_ras() {
        let mut bp = bp();
        let call = Inst::jal(Some(reg::lr()), 100);
        bp.warm(7, &call, true, 100);
        let ret = Inst::jalr(None, reg::lr(), 0);
        assert_eq!(bp.predict(100, &ret).target, 8);
    }

    #[test]
    fn reset_stats_keeps_training() {
        let mut bp = bp();
        let b = Inst::branch(Opcode::Bne, reg::x(1), reg::x(2), 3);
        for _ in 0..32 {
            let p = bp.predict(10, &b);
            bp.update(10, &b, true, 3, p);
        }
        bp.reset_stats();
        assert_eq!(bp.direction_accuracy().total(), 0);
        assert!(bp.predict(10, &b).taken);
    }

    #[test]
    fn history_distinguishes_correlated_branches() {
        let mut bp = bp();
        let b = Inst::branch(Opcode::Beq, reg::x(1), reg::x(2), 3);
        // Alternating pattern: gshare should reach high accuracy after
        // warmup thanks to history bits.
        let mut correct = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let p = bp.predict(5, &b);
            if p.taken == taken && i >= 50 {
                correct += 1;
            }
            bp.update(5, &b, taken, 3, p);
        }
        assert!(
            correct > 140,
            "gshare should learn the alternating pattern, got {correct}"
        );
    }
}
