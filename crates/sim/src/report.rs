//! Simulation results.

use regshare_core::{HintStats, PredictorStats, RenameStats};
use regshare_stats::Sampler;
use std::fmt;

/// Everything a simulation run produced.
///
/// The experiment harness consumes these to regenerate the paper's tables
/// and figures; `Display` prints a human-readable summary.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed instructions (main micro-ops; repairs excluded).
    pub committed_instructions: u64,
    /// Committed micro-ops (repairs included).
    pub committed_uops: u64,
    /// Hardware thread contexts the run was configured with.
    pub threads: usize,
    /// Committed instructions per hardware thread (length = `threads`).
    pub per_thread_committed: Vec<u64>,
    /// Whether the program ran to its `halt`.
    pub halted: bool,
    /// Branch mispredictions taken.
    pub mispredicts: u64,
    /// Precise exceptions taken (injected page faults).
    pub exceptions: u64,
    /// Shadow-cell recover commands issued during recoveries.
    pub shadow_recovers: u64,
    /// Repair micro-ops that needed the 3-step shadow path (Fig. 8 2(a)).
    pub expensive_repairs: u64,
    /// Cycles the rename stage stalled for lack of physical registers.
    pub rename_stall_cycles: u64,
    /// Conditional-branch direction accuracy in `[0, 1]`.
    pub branch_direction_accuracy: f64,
    /// L1-D hit rate in `[0, 1]`.
    pub l1d_hit_rate: f64,
    /// L2 hit rate in `[0, 1]`.
    pub l2_hit_rate: f64,
    /// Data-TLB hit rate in `[0, 1]`.
    pub tlb_hit_rate: f64,
    /// Renaming-scheme statistics.
    pub rename: RenameStats,
    /// Register-type predictor accuracy (empty for the baseline).
    pub predictor: PredictorStats,
    /// Speculation accounting split by grant source — static proofs
    /// versus the dynamic predictor (all-zero under `DynamicOnly` without
    /// an installed hint table, and for non-sharing schemes).
    pub hints: HintStats,
    /// Per-bank occupancy samples for the integer file (Fig. 9), indexed
    /// by shadow-cell count. Empty unless sampling was enabled.
    pub int_occupancy: Vec<Sampler>,
    /// Per-bank occupancy samples for the fp file.
    pub fp_occupancy: Vec<Sampler>,
    /// Host wall-clock seconds spent inside [`Pipeline::run`]
    /// (0 for reports taken before any run).
    ///
    /// [`Pipeline::run`]: crate::Pipeline::run
    pub wall_seconds: f64,
    /// Host wall-clock seconds spent in functional warming (0 for plain
    /// detailed runs). `wall_seconds` covers detailed simulation only, so
    /// a two-speed run's total time is `wall_seconds + warm_seconds`.
    pub warm_seconds: f64,
    /// Instructions executed by the functional-warming fast path (0 for
    /// plain detailed runs).
    pub warm_instructions: u64,
    /// Per-stage cost attribution: deterministic work counters always,
    /// host-time shares when [`crate::SimConfig::profile`] was set.
    pub profile: crate::StageProfile,
}

impl SimReport {
    /// Committed instructions per cycle, aggregated over all threads.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instructions as f64 / self.cycles as f64
        }
    }

    /// Committed instructions per cycle for one hardware thread
    /// (0 for out-of-range thread ids).
    pub fn per_thread_ipc(&self, tid: usize) -> f64 {
        match self.per_thread_committed.get(tid) {
            Some(&committed) if self.cycles > 0 => committed as f64 / self.cycles as f64,
            _ => 0.0,
        }
    }

    /// Simulator throughput: committed micro-ops per host wall-second.
    pub fn uops_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.committed_uops as f64 / self.wall_seconds
        }
    }

    /// Simulator speed: simulated cycles per host wall-second.
    pub fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.cycles as f64 / self.wall_seconds
        }
    }

    /// Simulator throughput: committed *instructions* (repairs excluded)
    /// per host wall-second of detailed simulation.
    pub fn instructions_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.committed_instructions as f64 / self.wall_seconds
        }
    }

    /// Functional-warming throughput: warmed instructions per host
    /// wall-second of warming (0 for plain detailed runs).
    pub fn warm_instructions_per_second(&self) -> f64 {
        if self.warm_seconds <= 0.0 {
            0.0
        } else {
            self.warm_instructions as f64 / self.warm_seconds
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} insts={} ipc={:.4} halted={}",
            self.cycles,
            self.committed_instructions,
            self.ipc(),
            self.halted
        )?;
        if self.threads > 1 {
            write!(f, "threads: {}", self.threads)?;
            for (tid, committed) in self.per_thread_committed.iter().enumerate() {
                write!(f, " t{tid}={committed} ({:.4})", self.per_thread_ipc(tid))?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "branches: mispredicts={} dir-acc={:.2}%",
            self.mispredicts,
            self.branch_direction_accuracy * 100.0
        )?;
        writeln!(
            f,
            "rename: alloc={} reuse={} (safe={} spec={}) blocked={} stalls={} repairs={}",
            self.rename.allocations,
            self.rename.reuses,
            self.rename.safe_reuses,
            self.rename.speculative_reuses,
            self.rename.blocked_reuses,
            self.rename.stalls,
            self.rename.repairs
        )?;
        writeln!(
            f,
            "recovery: exceptions={} shadow-recovers={} expensive-repairs={}",
            self.exceptions, self.shadow_recovers, self.expensive_repairs
        )?;
        writeln!(
            f,
            "memory: l1d={:.1}% l2={:.1}% tlb={:.1}%",
            self.l1d_hit_rate * 100.0,
            self.l2_hit_rate * 100.0,
            self.tlb_hit_rate * 100.0
        )?;
        write!(
            f,
            "host: wall={:.3}s throughput={:.0} insts/s, {:.0} uops/s ({:.0} cycles/s)",
            self.wall_seconds,
            self.instructions_per_second(),
            self.uops_per_second(),
            self.cycles_per_second()
        )?;
        if self.warm_instructions > 0 {
            write!(
                f,
                "\nwarming: {:.3}s for {} insts ({:.0} insts/s); detailed {:.3}s ({:.1}% of total)",
                self.warm_seconds,
                self.warm_instructions,
                self.warm_instructions_per_second(),
                self.wall_seconds,
                100.0 * self.wall_seconds / (self.wall_seconds + self.warm_seconds).max(1e-12),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> SimReport {
        SimReport {
            cycles: 0,
            committed_instructions: 0,
            committed_uops: 0,
            threads: 1,
            per_thread_committed: vec![0],
            halted: false,
            mispredicts: 0,
            exceptions: 0,
            shadow_recovers: 0,
            expensive_repairs: 0,
            rename_stall_cycles: 0,
            branch_direction_accuracy: 0.0,
            l1d_hit_rate: 0.0,
            l2_hit_rate: 0.0,
            tlb_hit_rate: 0.0,
            rename: RenameStats::default(),
            predictor: PredictorStats::default(),
            hints: HintStats::default(),
            int_occupancy: Vec::new(),
            fp_occupancy: Vec::new(),
            wall_seconds: 0.0,
            warm_seconds: 0.0,
            warm_instructions: 0,
            profile: Default::default(),
        }
    }

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(empty().ipc(), 0.0);
    }

    #[test]
    fn ipc_is_insts_over_cycles() {
        let mut r = empty();
        r.cycles = 100;
        r.committed_instructions = 150;
        assert!((r.ipc() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_multiline_and_nonempty() {
        let s = format!("{}", empty());
        assert!(s.lines().count() >= 5);
        assert!(s.contains("uops/s"));
    }

    #[test]
    fn throughput_handles_zero_wall_time() {
        let r = empty();
        assert_eq!(r.uops_per_second(), 0.0);
        assert_eq!(r.cycles_per_second(), 0.0);
    }

    #[test]
    fn throughput_is_uops_over_seconds() {
        let mut r = empty();
        r.committed_uops = 3000;
        r.committed_instructions = 2800;
        r.cycles = 1500;
        r.wall_seconds = 2.0;
        assert!((r.uops_per_second() - 1500.0).abs() < 1e-9);
        assert!((r.instructions_per_second() - 1400.0).abs() < 1e-9);
        assert!((r.cycles_per_second() - 750.0).abs() < 1e-9);
    }

    #[test]
    fn warming_split_appears_when_present() {
        let mut r = empty();
        assert!(!format!("{r}").contains("warming:"));
        r.warm_instructions = 1_000_000;
        r.warm_seconds = 0.5;
        assert!((r.warm_instructions_per_second() - 2_000_000.0).abs() < 1e-6);
        assert!(format!("{r}").contains("warming:"));
    }
}

#[cfg(test)]
mod thread_tests {
    use super::*;

    #[test]
    fn per_thread_ipc_splits_committed() {
        let mut r = SimReport {
            cycles: 100,
            committed_instructions: 150,
            committed_uops: 150,
            threads: 2,
            per_thread_committed: vec![100, 50],
            halted: true,
            mispredicts: 0,
            exceptions: 0,
            shadow_recovers: 0,
            expensive_repairs: 0,
            rename_stall_cycles: 0,
            branch_direction_accuracy: 0.0,
            l1d_hit_rate: 0.0,
            l2_hit_rate: 0.0,
            tlb_hit_rate: 0.0,
            rename: RenameStats::default(),
            predictor: PredictorStats::default(),
            hints: HintStats::default(),
            int_occupancy: Vec::new(),
            fp_occupancy: Vec::new(),
            wall_seconds: 0.0,
            warm_seconds: 0.0,
            warm_instructions: 0,
            profile: Default::default(),
        };
        assert!((r.per_thread_ipc(0) - 1.0).abs() < 1e-12);
        assert!((r.per_thread_ipc(1) - 0.5).abs() < 1e-12);
        assert_eq!(r.per_thread_ipc(2), 0.0);
        let shown = format!("{r}");
        assert!(shown.contains("threads: 2"));
        assert!(shown.contains("t1=50"));
        r.threads = 1;
        r.per_thread_committed = vec![150];
        assert!(!format!("{r}").contains("threads:"));
    }
}
