//! Commit: retire finished micro-ops in program order.

use crate::core_state::{tag_addr, CoreState, RobEntry, StageIo};
use crate::errors::TraceStage;
use crate::policy::RecoveryPolicy;
use crate::profile::StageSlot;
use crate::recovery;
use crate::stages::StageOutcome;
use crate::SimError;
use regshare_core::UopKind;
use regshare_isa::Machine;

/// The commit stage. Retires up to `commit_width` done micro-ops from
/// the ROB head per cycle: stores drain to memory, loads leave the LSQ,
/// the renamer releases checkpoint state, and every committed main op is
/// cross-checked against the in-order oracle. An excepting head flushes
/// the pipeline precisely and redirects fetch at the faulting pc.
#[derive(Debug, Default)]
pub(crate) struct CommitStage;

impl CommitStage {
    pub(crate) fn tick(
        &mut self,
        core: &mut CoreState,
        lat: &mut [StageIo],
        policy: &dyn RecoveryPolicy,
    ) -> Result<StageOutcome, SimError> {
        let n = core.threads.len();
        let mut budget = core.config.commit_width;
        for k in 0..n {
            let tid = (core.cycle as usize + k) % n;
            let hart = core.threads[tid].hart;
            while budget > 0 {
                let Some(head) = core.threads[tid].rob.front() else {
                    break;
                };
                if !head.done {
                    break;
                }
                if head.exception {
                    let (seq, pc, ea) = (head.seq, head.pc, head.ea);
                    take_exception(core, lat, policy, tid, seq, pc, ea);
                    break;
                }
                let Some(head) = core.threads[tid].rob.pop_front() else {
                    break;
                };
                budget -= 1;
                if head.kind == UopKind::Main && head.d.is_store() {
                    let (addr, width, value) = match core.threads[tid].lsq.commit_store(head.seq) {
                        Ok(committed) => committed,
                        Err(e) => return Err(core.lsq_err(lat, e)),
                    };
                    core.threads[tid].memory.write(addr, value, width);
                    core.mem_timing.access_data(
                        tag_addr(tid, head.pc) * 4,
                        tag_addr(tid, addr),
                        true,
                        core.cycle,
                    );
                }
                if head.kind == UopKind::Main && head.d.is_load() {
                    if let Err(e) = core.threads[tid].lsq.commit_load(head.seq) {
                        return Err(core.lsq_err(lat, e));
                    }
                }
                core.renamer.commit_on(hart, head.seq);
                core.trace_event(head.seq, head.pc, TraceStage::Commit);
                core.committed_uops += 1;
                core.profile.add_work(StageSlot::Commit, 1);
                if head.kind == UopKind::Main {
                    core.committed_instructions += 1;
                    core.threads[tid].committed_instructions += 1;
                    if let Err(detail) = check_oracle(&mut core.threads[tid].oracle, &head) {
                        return Err(SimError::OracleMismatch {
                            cycle: core.cycle,
                            detail,
                            snapshot: Box::new(core.snapshot(lat)),
                        });
                    }
                }
                core.last_commit_cycle = core.cycle;
                if head.d.is_halt() && head.kind == UopKind::Main {
                    core.threads[tid].halted = true;
                    core.threads[tid].fetch_pc = None;
                    if core.threads.iter().all(|t| t.halted) {
                        core.halted = true;
                        return Ok(StageOutcome::Halted);
                    }
                    break;
                }
            }
            if budget == 0 {
                break;
            }
        }
        Ok(StageOutcome::Ran)
    }
}

fn take_exception(
    core: &mut CoreState,
    lat: &mut [StageIo],
    policy: &dyn RecoveryPolicy,
    tid: usize,
    seq: u64,
    pc: u64,
    ea: Option<u64>,
) {
    // Flush the faulting thread's pipeline slice, including the faulting
    // instruction (it re-executes after the handler), and restore that
    // thread's precise state. Other threads keep flowing.
    let extra = recovery::squash_younger_than(core, lat, policy, tid, seq - 1);
    if let Some(addr) = ea {
        core.mem_timing.tlb_mut().take_fault(tag_addr(tid, addr));
    }
    core.threads[tid].fetch_pc = Some(pc);
    // Unlike the redirects in writeback, an exception's stall overrides
    // any earlier redirect outright: the flush discarded whatever that
    // redirect was refilling.
    core.threads[tid].fetch_stall_until =
        core.cycle + core.config.exception_penalty as u64 + extra as u64;
    core.exceptions += 1;
    core.pending_verify = true;
}

// Returns the divergence detail only; the caller wraps it into
// `SimError::OracleMismatch` with a snapshot (the oracle is borrowed
// mutably here, so the snapshot must be taken outside).
fn check_oracle(oracle: &mut Option<Machine>, head: &RobEntry) -> Result<(), String> {
    let Some(oracle) = oracle else {
        return Ok(());
    };
    let expected = oracle
        .step()
        .map_err(|e| format!("oracle failed at sim pc {}: {e}", head.pc))?
        .ok_or_else(|| format!("sim committed pc {} after oracle halted", head.pc))?;
    let mismatch = |what: &str, exp: String, got: String| {
        Err(format!(
            "{what} differs at pc {} ({}): oracle {exp}, sim {got}",
            head.pc, head.inst
        ))
    };
    if expected.pc != head.pc {
        return mismatch("pc", expected.pc.to_string(), head.pc.to_string());
    }
    if head.dst.is_some() && expected.wvalue != head.result {
        return mismatch(
            "destination value",
            format!("{:?}", expected.wvalue),
            format!("{:?}", head.result),
        );
    }
    if head.dst2.is_some() && expected.wvalue2 != head.result2 {
        return mismatch(
            "writeback value",
            format!("{:?}", expected.wvalue2),
            format!("{:?}", head.result2),
        );
    }
    if expected.ea != head.ea {
        return mismatch(
            "effective address",
            format!("{:?}", expected.ea),
            format!("{:?}", head.ea),
        );
    }
    if expected.taken != head.taken {
        return mismatch(
            "branch outcome",
            format!("{:?}", expected.taken),
            format!("{:?}", head.taken),
        );
    }
    Ok(())
}
