//! The eight pipeline stages, one module each.
//!
//! Every stage is a struct whose `tick` mutates the shared
//! [`crate::core_state::CoreState`] and the typed latches in
//! [`crate::core_state::StageIo`]; the slim `Pipeline` driver sequences
//! the ticks in commit-first order (so a cycle's results are visible to
//! younger stages only a cycle later) and owns nothing stage-specific.
//!
//! Two pairs are fused by construction rather than latched:
//!
//! * **rename → dispatch**: rename's per-instruction capacity checks
//!   read the live ROB/IQ/LSQ occupancy that dispatch just updated, so
//!   rename drives [`DispatchStage::dispatch`] directly, handing over a
//!   [`crate::core_state::RenamedBundle`] per instruction.
//! * **issue → execute**: the select loop consults structural hazards
//!   (functional units, unresolved older stores) that only evaluation
//!   can decide, so issue drives [`ExecuteStage::try_execute`] per
//!   candidate and keeps candidates that report a hazard for next cycle.

mod commit;
mod decode;
mod dispatch;
mod execute;
mod fetch;
mod issue;
mod rename;
mod writeback;

pub(crate) use commit::CommitStage;
pub(crate) use decode::DecodeStage;
pub(crate) use dispatch::DispatchStage;
pub(crate) use execute::ExecuteStage;
pub(crate) use fetch::FetchStage;
pub(crate) use issue::IssueStage;
pub(crate) use rename::RenameStage;
pub(crate) use writeback::WritebackStage;

/// What a stage's tick did, as far as the driver cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StageOutcome {
    /// The stage ran; the cycle continues.
    Ran,
    /// Commit retired a `halt`: the driver stops the cycle here.
    Halted,
}
