//! The eight pipeline stages, one module each.
//!
//! Every stage is a struct whose `tick` mutates the shared
//! [`crate::core_state::CoreState`] and the typed latches in
//! [`crate::core_state::StageIo`]; the slim `Pipeline` driver sequences
//! the ticks in commit-first order (so a cycle's results are visible to
//! younger stages only a cycle later) and owns nothing stage-specific.
//!
//! Two pairs are fused by construction rather than latched:
//!
//! * **rename → dispatch**: rename's per-instruction capacity checks
//!   read the live ROB/IQ/LSQ occupancy that dispatch just updated, so
//!   rename drives [`DispatchStage::dispatch`] directly, handing over a
//!   [`crate::core_state::RenamedBundle`] per instruction.
//! * **issue → execute**: the select loop consults structural hazards
//!   (functional units, unresolved older stores) that only evaluation
//!   can decide, so issue drives [`ExecuteStage::try_execute`] per
//!   candidate and keeps candidates that report a hazard for next cycle.

mod commit;
mod decode;
mod dispatch;
mod execute;
mod fetch;
mod issue;
mod rename;
mod writeback;

pub(crate) use commit::CommitStage;
pub(crate) use decode::DecodeStage;
pub(crate) use dispatch::DispatchStage;
pub(crate) use execute::ExecuteStage;
pub(crate) use fetch::FetchStage;
pub(crate) use issue::IssueStage;
pub(crate) use rename::RenameStage;
pub(crate) use writeback::WritebackStage;

/// The most micro-ops one renamed instruction can expand to (a repair
/// move per source plus the main op) — rename's per-instruction
/// capacity reservation, and the smallest useful per-thread ROB
/// partition.
pub(crate) const WORST_CASE_UOPS: usize = 4;

/// What a stage's tick did, as far as the driver cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StageOutcome {
    /// The stage ran; the cycle continues.
    Ran,
    /// Commit retired a `halt`: the driver stops the cycle here.
    Halted,
}

#[cfg(test)]
mod tests {
    use crate::config::SimConfig;
    use crate::errors::TraceStage;
    use crate::pipeline::Pipeline;
    use regshare_core::{BaselineRenamer, RenamerConfig};
    use regshare_isa::{reg, Asm};

    /// At width 8 a dependent pair sits in the issue queue together while
    /// the long-latency producer executes; the scoreboard broadcast at the
    /// producer's writeback must wake the consumer early enough for it to
    /// be selected in the very same cycle — writeback ticks before issue
    /// in the driver, so a later wakeup would cost a whole bubble.
    #[test]
    fn width_eight_consumer_issues_on_the_producers_writeback_cycle() {
        let mut a = Asm::new();
        a.li(reg::x(1), 6);
        a.mul(reg::x(2), reg::x(1), reg::x(1));
        a.add(reg::x(3), reg::x(2), reg::x(2));
        a.halt();
        let mut cfg = SimConfig::test().with_width(8);
        cfg.trace = true;
        let renamer = Box::new(BaselineRenamer::new(RenamerConfig::baseline(64)));
        let mut sim = Pipeline::new(a.assemble(), renamer, cfg);
        sim.run().expect("run");
        let trace = sim.take_trace();
        let cycle_of = |seq: u64, stage: TraceStage| {
            trace
                .iter()
                .find(|e| e.seq == seq && e.stage == stage)
                .unwrap_or_else(|| panic!("no {stage:?} event for seq {seq}"))
                .cycle
        };
        // Sequence numbers under the baseline renamer (no repair moves):
        // 1 = li, 2 = mul (producer), 3 = add (consumer), 4 = halt.
        let producer_wb = cycle_of(2, TraceStage::Writeback);
        let consumer_issue = cycle_of(3, TraceStage::Issue);
        assert!(
            cycle_of(3, TraceStage::Dispatch) < producer_wb,
            "consumer must already be in the issue queue when the producer \
             writes back, or the test is not exercising the wakeup path"
        );
        assert_eq!(
            consumer_issue, producer_wb,
            "same-cycle wakeup: the consumer must issue on the producer's \
             writeback cycle at width 8"
        );
    }
}
