//! Fetch: follow predicted PCs through the real program image.

use crate::core_state::{CoreState, Fetched, StageIo};
use crate::profile::StageSlot;
use crate::stages::StageOutcome;

/// The fetch stage. Walks the predicted path (gshare + BTB), honours
/// redirect/exception stalls and i-cache miss latency, and deposits
/// [`Fetched`] instructions into the fetch → decode latch.
#[derive(Debug, Default)]
pub(crate) struct FetchStage;

impl FetchStage {
    pub(crate) fn tick(&mut self, core: &mut CoreState, lat: &mut StageIo) -> StageOutcome {
        if core.cycle < core.fetch_stall_until {
            return StageOutcome::Ran;
        }
        let Some(mut pc) = core.fetch_pc else {
            return StageOutcome::Ran;
        };
        for _ in 0..core.config.fetch_width {
            if lat.fetched.len() >= core.config.fetch_queue {
                break;
            }
            let Some(inst) = core.program.fetch(pc).copied() else {
                // Ran off the program (wrong path): wait for a redirect.
                core.fetch_pc = None;
                return StageOutcome::Ran;
            };
            let lat_cycles = core.mem_timing.access_inst(pc * 4, core.cycle);
            if lat_cycles > core.config.mem.l1i.latency {
                // I-cache miss: nothing is delivered until the line
                // arrives; fetch retries this PC after the fill.
                core.fetch_stall_until = core.cycle + lat_cycles as u64;
                core.fetch_pc = Some(pc);
                return StageOutcome::Ran;
            }
            let d = core.program.decoded().op(pc);
            let pred = d.is_branch().then(|| {
                let mut p = core.bpred.predict(pc, &inst);
                // An armed injection flip inverts the next prediction,
                // manufacturing a misprediction (and its recovery) the
                // workload would not produce on its own. Wrong-path
                // fetch is already a normal mode of this pipeline.
                if let Some(inj) = &mut core.inject {
                    if inj.armed_flip {
                        inj.armed_flip = false;
                        inj.stats.branch_flips += 1;
                        p.taken = !p.taken;
                    }
                }
                p
            });
            let taken_pred = pred.map(|p| p.taken).unwrap_or(false);
            let next = match pred {
                Some(p) if p.taken => p.target,
                _ => pc + 1,
            };
            let is_halt = d.is_halt();
            core.profile.add_work(StageSlot::Fetch, 1);
            lat.fetched.push_back(Fetched { pc, inst, d, pred });
            if is_halt {
                core.fetch_pc = None;
                return StageOutcome::Ran;
            }
            pc = next;
            if taken_pred || core.cycle < core.fetch_stall_until {
                break; // a taken branch or an i-cache miss ends the group
            }
        }
        core.fetch_pc = Some(pc);
        StageOutcome::Ran
    }
}
