//! Fetch: follow predicted PCs through the real program image, one
//! hardware thread per cycle.

use crate::core_state::{tag_addr, CoreState, Fetched, StageIo};
use crate::policy::FetchPolicy;
use crate::profile::StageSlot;
use crate::stages::StageOutcome;

/// The fetch stage. Each cycle the configured [`FetchPolicy`] picks one
/// eligible hardware thread (not halted, not redirect-stalled, fetch
/// queue has room); fetch then walks that thread's predicted path
/// (gshare + BTB), honours i-cache miss latency, and deposits
/// [`Fetched`] instructions into the thread's fetch → decode latch.
pub(crate) struct FetchStage {
    policy: Box<dyn FetchPolicy>,
    eligible: Vec<bool>,
    in_flight: Vec<usize>,
}

impl FetchStage {
    pub(crate) fn new(policy: Box<dyn FetchPolicy>, threads: usize) -> Self {
        FetchStage {
            policy,
            eligible: vec![false; threads],
            in_flight: vec![0; threads],
        }
    }

    pub(crate) fn tick(&mut self, core: &mut CoreState, lat: &mut [StageIo]) -> StageOutcome {
        for (tid, ctx) in core.threads.iter().enumerate() {
            self.eligible[tid] = !ctx.halted
                && ctx.fetch_pc.is_some()
                && core.cycle >= ctx.fetch_stall_until
                && lat[tid].fetched.len() < core.config.fetch_queue;
            self.in_flight[tid] = ctx.rob.len() + lat[tid].fetched.len() + lat[tid].decoded.len();
        }
        let Some(tid) = self
            .policy
            .pick(core.cycle, &self.eligible, &self.in_flight)
        else {
            return StageOutcome::Ran;
        };
        let io = &mut lat[tid];
        let ctx = &core.threads[tid];
        let Some(mut pc) = ctx.fetch_pc else {
            return StageOutcome::Ran;
        };
        for _ in 0..core.config.fetch_width {
            if io.fetched.len() >= core.config.fetch_queue {
                break;
            }
            let Some(inst) = core.threads[tid].program.fetch(pc).copied() else {
                // Ran off the program (wrong path): wait for a redirect.
                core.threads[tid].fetch_pc = None;
                return StageOutcome::Ran;
            };
            let lat_cycles = core
                .mem_timing
                .access_inst(tag_addr(tid, pc) * 4, core.cycle);
            if lat_cycles > core.config.mem.l1i.latency
                && core.threads[tid].pending_fill != Some(pc)
            {
                // I-cache miss: nothing is delivered until the line
                // arrives; fetch retries this PC after the fill. The
                // retry consumes the arrived line from the fill buffer
                // even if it misses again — co-resident threads
                // thrashing an associativity-limited set must not
                // re-stall the victim forever.
                core.threads[tid].pending_fill = Some(pc);
                core.threads[tid].fetch_stall_until = core.cycle + lat_cycles as u64;
                core.threads[tid].fetch_pc = Some(pc);
                return StageOutcome::Ran;
            }
            core.threads[tid].pending_fill = None;
            let d = core.threads[tid].program.decoded().op(pc);
            let pred = d.is_branch().then(|| {
                // The predictor indexes on the thread-tagged PC so the
                // threads' histories stay disjoint; the predicted
                // target is an untagged program PC.
                let mut p = core.bpred.predict(tag_addr(tid, pc), &inst);
                // An armed injection flip inverts the next prediction,
                // manufacturing a misprediction (and its recovery) the
                // workload would not produce on its own. Wrong-path
                // fetch is already a normal mode of this pipeline.
                if let Some(inj) = &mut core.inject {
                    if inj.armed_flip {
                        inj.armed_flip = false;
                        inj.stats.branch_flips += 1;
                        p.taken = !p.taken;
                    }
                }
                p
            });
            let taken_pred = pred.map(|p| p.taken).unwrap_or(false);
            let next = match pred {
                Some(p) if p.taken => p.target,
                _ => pc + 1,
            };
            let is_halt = d.is_halt();
            core.profile.add_work(StageSlot::Fetch, 1);
            io.fetched.push_back(Fetched { pc, inst, d, pred });
            if is_halt {
                core.threads[tid].fetch_pc = None;
                return StageOutcome::Ran;
            }
            pc = next;
            if taken_pred || core.cycle < core.threads[tid].fetch_stall_until {
                break; // a taken branch or an i-cache miss ends the group
            }
        }
        core.threads[tid].fetch_pc = Some(pc);
        StageOutcome::Ran
    }
}
