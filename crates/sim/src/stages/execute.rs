//! Execute: evaluate a selected micro-op and schedule its completion.

use crate::core_state::{tag_addr, CoreState, StageIo};
use crate::{SimError, StoreSearch};
use regshare_core::UopKind;
use regshare_isa::exec::{self, Action};
use regshare_isa::OpClass;
use regshare_mem::DataAccess;

/// The execute stage. Driven per candidate by the issue stage's select
/// loop (see [`crate::stages::IssueStage`]): claims a functional unit,
/// reads operands out of the value-carrying register file (shadow cells
/// included), evaluates the micro-op, and books the completion on the
/// wheel. Memory operations go through the LSQ for forwarding,
/// conflict and fault detection.
#[derive(Debug, Default)]
pub(crate) struct ExecuteStage;

impl ExecuteStage {
    /// Attempts to execute the ready micro-op `seq` of thread `tid` at
    /// ROB-partition index `idx`. `Ok(true)`: issued (or squashed —
    /// either way leaves the ready queue); `Ok(false)`: structural
    /// hazard, retry next cycle.
    pub(crate) fn try_execute(
        &mut self,
        core: &mut CoreState,
        lat: &mut [StageIo],
        seq: u64,
        tid: usize,
        idx: usize,
    ) -> Result<bool, SimError> {
        let entry = &core.threads[tid].rob[idx];
        debug_assert!(
            entry
                .srcs
                .iter()
                .flatten()
                .all(|t| core.scoreboard.is_ready(*t)),
            "seq {seq} selected with a busy source operand",
        );
        let inst = entry.inst;
        let d = entry.d;
        let kind = entry.kind;
        let pc = entry.pc;
        let srcs = entry.srcs;
        match kind {
            UopKind::RepairMove => {
                let Some(latency) = core.fus.try_issue(OpClass::IntAlu, core.cycle) else {
                    return Ok(false);
                };
                let Some(src) = srcs[0] else {
                    return Err(core
                        .corrupt_err(lat, format!("repair move seq {seq} has no source operand")));
                };
                let expensive = core.rf[src.class.index()].needs_recover(src.preg, src.version);
                let value = core.rf[src.class.index()].read_version(src.preg, src.version);
                let total = if expensive {
                    core.expensive_repairs += 1;
                    latency + 2 // the 3-step micro-op sequence of Fig. 8 2(a)
                } else {
                    latency
                };
                let e = &mut core.threads[tid].rob[idx];
                e.result = Some(value);
                e.issued = true;
                core.schedule(seq, total);
                Ok(true)
            }
            UopKind::Main if d.is_load() => {
                if !core.threads[tid].lsq.older_stores_resolved(seq) {
                    return Ok(false);
                }
                let ops = core.read_operands(&srcs);
                let (ea, width, writeback) = match exec::evaluate(&inst, pc, ops) {
                    Action::Load { ea, width } => (ea, width, None),
                    Action::LoadPost {
                        ea,
                        width,
                        writeback,
                    } => (ea, width, Some(writeback)),
                    other => {
                        return Err(core.corrupt_err(
                            lat,
                            format!("load seq {seq} evaluated to a non-load action {other:?}"),
                        ));
                    }
                };
                let found = match core.threads[tid].lsq.search(seq, ea, width) {
                    Ok(found) => found,
                    Err(e) => return Err(core.lsq_err(lat, e)),
                };
                match found {
                    StoreSearch::Conflict { .. } => Ok(false),
                    StoreSearch::Forward(bits) => {
                        if core.fus.try_issue(OpClass::Load, core.cycle).is_none() {
                            return Ok(false);
                        }
                        let latency = 1 + core.config.mem.l1d.latency;
                        let e = &mut core.threads[tid].rob[idx];
                        e.result = Some(bits);
                        e.result2 = writeback;
                        e.ea = Some(ea);
                        e.issued = true;
                        core.schedule(seq, latency);
                        Ok(true)
                    }
                    StoreSearch::Memory => {
                        if core.fus.try_issue(OpClass::Load, core.cycle).is_none() {
                            return Ok(false);
                        }
                        let access = core.mem_timing.access_data_checked(
                            tag_addr(tid, pc) * 4,
                            tag_addr(tid, ea),
                            false,
                            core.cycle,
                        );
                        let (latency, bits, fault) = match access {
                            DataAccess::Done(latency) => {
                                (1 + latency, core.threads[tid].memory.read(ea, width), false)
                            }
                            DataAccess::Fault => (2, 0, true),
                        };
                        // A forced fault retries cleanly after the
                        // precise flush (the armed flag is one-shot).
                        let fault = fault || core.consume_armed_load_fault();
                        let e = &mut core.threads[tid].rob[idx];
                        e.result = Some(bits);
                        e.result2 = writeback;
                        e.ea = Some(ea);
                        e.exception = fault;
                        e.issued = true;
                        core.schedule(seq, latency);
                        Ok(true)
                    }
                }
            }
            UopKind::Main if d.is_store() => {
                let Some(latency) = core.fus.try_issue(OpClass::Store, core.cycle) else {
                    return Ok(false);
                };
                let ops = core.read_operands(&srcs);
                let (ea, width, value, writeback) = match exec::evaluate(&inst, pc, ops) {
                    Action::Store { ea, width, value } => (ea, width, value, None),
                    Action::StorePost {
                        ea,
                        width,
                        value,
                        writeback,
                    } => (ea, width, value, Some(writeback)),
                    other => {
                        return Err(core.corrupt_err(
                            lat,
                            format!("store seq {seq} evaluated to a non-store action {other:?}"),
                        ));
                    }
                };
                if let Err(e) = core.threads[tid].lsq.resolve_store(seq, ea, width, value) {
                    return Err(core.lsq_err(lat, e));
                }
                let forced = core.consume_armed_store_fault();
                let fault = core.mem_timing.tlb().would_fault(tag_addr(tid, ea)) || forced;
                let e = &mut core.threads[tid].rob[idx];
                e.ea = Some(ea);
                e.result2 = writeback;
                e.exception = fault;
                e.issued = true;
                core.schedule(seq, latency);
                Ok(true)
            }
            UopKind::Main => {
                let class = d.class;
                let Some(latency) = core.fus.try_issue(class, core.cycle) else {
                    return Ok(false);
                };
                let ops = core.read_operands(&srcs);
                let action = exec::evaluate(&inst, pc, ops);
                let e = &mut core.threads[tid].rob[idx];
                match action {
                    Action::Value(bits) => {
                        e.result = Some(bits);
                        e.next_pc = pc + 1;
                    }
                    Action::Branch {
                        taken,
                        target,
                        link,
                    } => {
                        e.taken = Some(taken);
                        e.next_pc = if taken { target } else { pc + 1 };
                        e.result = link;
                    }
                    Action::Nop | Action::Halt => {
                        e.next_pc = pc + 1;
                    }
                    Action::Load { .. }
                    | Action::Store { .. }
                    | Action::LoadPost { .. }
                    | Action::StorePost { .. } => {
                        return Err(core.corrupt_err(
                            lat,
                            format!("non-memory seq {seq} evaluated to a memory action"),
                        ));
                    }
                }
                e.issued = true;
                core.schedule(seq, latency);
                Ok(true)
            }
        }
    }
}
