//! Decode: move fetched instructions toward rename.

use crate::core_state::{CoreState, StageIo};
use crate::profile::StageSlot;
use crate::stages::StageOutcome;

/// The decode stage. Transfers up to `decode_width` instructions per
/// cycle from the fetch latch into the decode → rename latch, bounded by
/// a small skid buffer (twice the rename width) so a rename stall backs
/// pressure up into fetch.
#[derive(Debug, Default)]
pub(crate) struct DecodeStage;

impl DecodeStage {
    pub(crate) fn tick(&mut self, core: &mut CoreState, lat: &mut StageIo) -> StageOutcome {
        let cap = core.config.rename_width * 2;
        for _ in 0..core.config.decode_width {
            if lat.decoded.len() >= cap {
                break;
            }
            let Some(f) = lat.fetched.pop_front() else {
                break;
            };
            core.profile.add_work(StageSlot::Decode, 1);
            lat.decoded.push_back(f);
        }
        StageOutcome::Ran
    }
}
