//! Decode: move fetched instructions toward rename.

use crate::core_state::{CoreState, StageIo};
use crate::profile::StageSlot;
use crate::stages::StageOutcome;

/// The decode stage. Transfers up to `decode_width` instructions per
/// cycle from the fetch latches into the decode → rename latches,
/// bounded per thread by a small skid buffer (twice the rename width) so
/// a rename stall backs pressure up into fetch. The width budget is
/// shared: threads are visited in a rotation that starts at
/// `cycle % threads`, so no thread is structurally favoured.
#[derive(Debug, Default)]
pub(crate) struct DecodeStage;

impl DecodeStage {
    pub(crate) fn tick(&mut self, core: &mut CoreState, lat: &mut [StageIo]) -> StageOutcome {
        let n = core.threads.len();
        let cap = core.config.rename_width * 2;
        let mut budget = core.config.decode_width;
        for k in 0..n {
            let tid = (core.cycle as usize + k) % n;
            let io = &mut lat[tid];
            while budget > 0 && io.decoded.len() < cap {
                let Some(f) = io.fetched.pop_front() else {
                    break;
                };
                core.profile.add_work(StageSlot::Decode, 1);
                io.decoded.push_back(f);
                budget -= 1;
            }
            if budget == 0 {
                break;
            }
        }
        StageOutcome::Ran
    }
}
