//! Dispatch: insert renamed micro-ops into the ROB, issue queue, LSQ
//! and the wakeup network.

use crate::core_state::{CoreState, RenamedBundle, RobEntry};
use crate::errors::TraceStage;
use regshare_core::UopKind;

/// The dispatch stage. Consumes one [`RenamedBundle`] per call — driven
/// by rename within the same tick (see [`crate::stages::RenameStage`]) —
/// allocating entries in the renaming thread's ROB and LSQ partitions,
/// registering destinations with the shared scoreboard, and parking each
/// micro-op on its busy source tags.
#[derive(Debug, Default)]
pub(crate) struct DispatchStage;

impl DispatchStage {
    pub(crate) fn dispatch(&mut self, core: &mut CoreState, tid: usize, bundle: RenamedBundle) {
        let RenamedBundle {
            uops,
            pc,
            inst,
            d,
            pred,
        } = bundle;
        let hart = core.threads[tid].hart;
        for &uop in &uops {
            for dst in [uop.dst, uop.dst2].into_iter().flatten() {
                core.scoreboard.set_busy(dst);
                if dst.version == 0 {
                    core.rf[dst.class.index()].reset_on_alloc(dst.preg);
                }
            }
            let is_main = uop.kind == UopKind::Main;
            if is_main && d.is_load() {
                core.threads[tid].lsq.dispatch_load(uop.seq);
            }
            if is_main && d.is_store() {
                core.threads[tid].lsq.dispatch_store(uop.seq);
            }
            core.trace_event(uop.seq, pc, TraceStage::Dispatch);
            // Register with the wakeup network: count the busy
            // sources and park on each; producers can only precede
            // consumers in rename order, so a tag observed ready
            // here stays ready until this entry issues.
            let mut pending_srcs = 0u8;
            for tag in uop.srcs.iter().flatten() {
                if !core.scoreboard.is_ready(*tag) {
                    core.scoreboard.watch(*tag, uop.seq);
                    pending_srcs += 1;
                }
            }
            core.threads[tid].rob.push_back(RobEntry {
                hart,
                seq: uop.seq,
                pc,
                inst,
                d,
                kind: uop.kind,
                srcs: uop.srcs,
                dst: uop.dst,
                dst2: uop.dst2,
                pred: if is_main { pred } else { None },
                issued: false,
                done: false,
                pending_srcs,
                exception: false,
                result: None,
                result2: None,
                ea: None,
                taken: None,
                next_pc: pc + 1,
            });
            if pending_srcs == 0 {
                core.ready_q.insert(uop.seq);
            }
            core.iq_len += 1;
            if d.is_branch() {
                core.threads[tid].unresolved_branches.insert(uop.seq);
            }
        }
    }
}
