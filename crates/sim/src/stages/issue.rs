//! Issue: select operand-ready micro-ops and send them to execute.

use crate::core_state::{CoreState, StageIo};
use crate::policy::IssueSelect;
use crate::profile::StageSlot;
use crate::stages::{ExecuteStage, StageOutcome};
use crate::SimError;

/// The issue stage. Orders the ready queue through the configured
/// [`IssueSelect`] policy and drives [`ExecuteStage::try_execute`] per
/// candidate, up to `issue_width` successes per cycle. Candidates that
/// report a structural hazard (busy functional unit, store-set
/// conflict, unresolved older store) stay in the ready queue and retry
/// next cycle.
pub(crate) struct IssueStage {
    select: Box<dyn IssueSelect>,
    /// Scratch buffer reused across cycles for the candidate order.
    cand_scratch: Vec<u64>,
    /// Scratch buffer reused across cycles for this cycle's issues.
    issued_scratch: Vec<u64>,
}

impl IssueStage {
    /// `iq_entries` bounds both scratch buffers: the candidate order is
    /// drawn from the ready queue and the issued list from the
    /// candidates, so pre-sizing to the issue queue's capacity keeps
    /// the tick allocation-free from the first cycle.
    pub(crate) fn new(select: Box<dyn IssueSelect>, iq_entries: usize) -> Self {
        IssueStage {
            select,
            cand_scratch: Vec::with_capacity(iq_entries),
            issued_scratch: Vec::with_capacity(iq_entries),
        }
    }

    pub(crate) fn tick(
        &mut self,
        core: &mut CoreState,
        lat: &mut [StageIo],
        exec: &mut ExecuteStage,
    ) -> Result<StageOutcome, SimError> {
        if core.ready_q.is_empty() {
            return Ok(StageOutcome::Ran);
        }
        let mut issued = std::mem::take(&mut self.issued_scratch);
        issued.clear();
        let mut candidates = std::mem::take(&mut self.cand_scratch);
        candidates.clear();
        self.select.select(core.ready_q.as_slice(), &mut candidates);
        for seq in candidates.drain(..) {
            if issued.len() >= core.config.issue_width {
                break;
            }
            let Some((tid, idx)) = core.rob_find(seq) else {
                issued.push(seq); // squashed; drop from the ready queue
                continue;
            };
            if exec.try_execute(core, lat, seq, tid, idx)? {
                issued.push(seq);
            }
        }
        core.profile.add_work(StageSlot::Issue, issued.len() as u64);
        for s in &issued {
            if core.ready_q.remove(*s) {
                core.iq_len -= 1;
            }
        }
        self.cand_scratch = candidates;
        self.issued_scratch = issued;
        Ok(StageOutcome::Ran)
    }
}
