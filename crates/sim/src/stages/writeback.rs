//! Writeback: drain completions, broadcast wakeups, resolve branches.

use crate::core_state::{tag_addr, CoreState, StageIo};
use crate::errors::TraceStage;
use crate::policy::RecoveryPolicy;
use crate::profile::StageSlot;
use crate::recovery;
use crate::stages::StageOutcome;
use crate::SimError;
use regshare_core::UopKind;

/// The writeback stage. Takes this cycle's completions off the wheel,
/// writes destination values into the register file, wakes consumers
/// through the scoreboard, and resolves branches — triggering
/// mispredict recovery inline so younger completions in the same batch
/// see the post-squash machine.
#[derive(Debug, Default)]
pub(crate) struct WritebackStage;

impl WritebackStage {
    pub(crate) fn tick(
        &mut self,
        core: &mut CoreState,
        lat: &mut [StageIo],
        policy: &dyn RecoveryPolicy,
    ) -> Result<StageOutcome, SimError> {
        let mut seqs = core.completions.take(core.cycle);
        if seqs.is_empty() {
            core.completions.recycle(seqs);
            return Ok(StageOutcome::Ran);
        }
        // Out-of-order issue can schedule completions for one cycle in
        // any order; broadcast oldest-first like real wakeup ports.
        seqs.sort_unstable();
        core.profile
            .add_work(StageSlot::Writeback, seqs.len() as u64);
        for &seq in &seqs {
            let Some((tid, idx)) = core.rob_find(seq) else {
                continue; // squashed while in flight
            };
            // `idx` stays valid through the wakeup broadcasts below: they
            // mutate entries in place but never insert or remove.
            let (dst, result, dst2, result2, is_branch) = {
                let e = &mut core.threads[tid].rob[idx];
                e.done = true;
                (e.dst, e.result, e.dst2, e.result2, e.d.is_branch())
            };
            if is_branch {
                core.threads[tid].unresolved_branches.remove(seq);
            }
            core.renamer.on_writeback(seq);
            if core.config.trace {
                let pc = core.threads[tid].rob[idx].pc;
                core.trace_event(seq, pc, TraceStage::Writeback);
            }
            if let Some(tag) = dst {
                let Some(bits) = result else {
                    return Err(core.corrupt_err(
                        lat,
                        format!("seq {seq} writes {tag} but produced no value"),
                    ));
                };
                core.rf[tag.class.index()].write(tag.preg, tag.version, bits);
                core.broadcast_ready(lat, tag)?;
            }
            if let Some(tag) = dst2 {
                let Some(bits) = result2 else {
                    return Err(core.corrupt_err(
                        lat,
                        format!("seq {seq} writes back {tag} but produced no value"),
                    ));
                };
                core.rf[tag.class.index()].write(tag.preg, tag.version, bits);
                core.broadcast_ready(lat, tag)?;
            }
            // Resolve branches.
            let e = &core.threads[tid].rob[idx];
            if e.kind == UopKind::Main && e.d.is_branch() {
                let (pc, inst, next_pc) = (e.pc, e.inst, e.next_pc);
                let (taken, pred) = match (e.taken, e.pred) {
                    (Some(t), Some(p)) => (t, p),
                    _ => {
                        return Err(core.corrupt_err(
                            lat,
                            format!(
                                "resolved branch seq {seq} is missing its outcome or prediction"
                            ),
                        ));
                    }
                };
                let target = next_pc;
                // Update under the same thread-tagged key used at predict.
                core.bpred
                    .update(tag_addr(tid, pc), &inst, taken, target, pred);
                let mispredicted = pred.taken != taken || (taken && pred.target != target);
                if mispredicted {
                    core.mispredicts += 1;
                    let penalty = core.config.mispredict_penalty;
                    recovery::redirect_after_squash(core, lat, policy, tid, seq, next_pc, penalty);
                    // Nested-recovery injection: an interrupt scheduled
                    // on this misprediction ordinal is delivered later
                    // this same cycle, mid-recovery.
                    if let Some(inj) = &mut core.inject {
                        let ordinal = inj.mispredicts_seen;
                        inj.mispredicts_seen += 1;
                        if inj.nested_ordinals.binary_search(&ordinal).is_ok() {
                            inj.pending_interrupt = true;
                            inj.stats.nested_interrupts += 1;
                        }
                    }
                }
            }
        }
        core.completions.recycle(seqs);
        Ok(StageOutcome::Ran)
    }
}
