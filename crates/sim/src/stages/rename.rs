//! Rename: drive the renaming scheme and hand micro-ops to dispatch.

use crate::core_state::{CoreState, RenamedBundle, StageIo};
use crate::profile::StageSlot;
use crate::stages::{DispatchStage, StageOutcome, WORST_CASE_UOPS};

/// The rename stage. Pulls decoded instructions, checks downstream
/// capacity, asks the [`regshare_core::Renamer`] for the micro-op
/// expansion (repairs first, main op last), and hands each renamed
/// instruction to dispatch as a [`RenamedBundle`].
///
/// Rename and dispatch are fused within one tick: each instruction's
/// capacity check must see the ROB/IQ/LSQ occupancy left by the
/// previous instruction's dispatch, so batching renames behind a latch
/// would change stall timing.
///
/// The `rename_width` budget is shared across the hardware threads,
/// visited in a rotation starting at `cycle % threads`: a thread that
/// stalls (full partition, no free registers) yields the remaining
/// budget to the next thread instead of wasting the slots.
#[derive(Debug, Default)]
pub(crate) struct RenameStage {
    /// Per-thread `(state_epoch, next_seq, pc)` of the last failed
    /// rename. While all three stand still, nothing that could change
    /// the rename's outcome has happened and the instruction is the
    /// same, so the retry would fail identically — the stage charges
    /// `note_stall` instead of re-running the scheme's full rename
    /// machinery every stalled cycle.
    stall_gates: Vec<Option<(u64, u64, u64)>>,
}

impl RenameStage {
    pub(crate) fn new(threads: usize) -> Self {
        RenameStage {
            stall_gates: vec![None; threads],
        }
    }

    pub(crate) fn tick(
        &mut self,
        core: &mut CoreState,
        lat: &mut [StageIo],
        dispatch: &mut DispatchStage,
    ) -> StageOutcome {
        let n = core.threads.len();
        let rob_partition = core.rob_partition();
        let mut stalled_for_regs = false;
        let mut budget = core.config.rename_width;
        for k in 0..n {
            let tid = (core.cycle as usize + k) % n;
            let hart = core.threads[tid].hart;
            while budget > 0 {
                let Some(f) = lat[tid].decoded.front() else {
                    break;
                };
                // A renamed instruction expands to at most the main op
                // plus one repair per source: reserve conservatively
                // before renaming. ROB and LSQ capacity come from this
                // thread's partitions; the issue queue is shared.
                let rob_free = rob_partition - core.threads[tid].rob.len();
                let iq_free = core.config.iq_entries - core.iq_len;
                let is_load = f.d.is_load() as usize;
                let is_store = f.d.is_store() as usize;
                if rob_free < WORST_CASE_UOPS
                    || iq_free < WORST_CASE_UOPS
                    || !core.threads[tid].lsq.has_room(is_load, is_store)
                {
                    break;
                }
                if let Some((epoch, seq, pc)) = self.stall_gates[tid] {
                    if epoch == core.renamer.state_epoch() && seq == core.next_seq && pc == f.pc {
                        core.renamer.note_stall_on(hart);
                        stalled_for_regs = true;
                        break;
                    }
                }
                let Some(uops) = core.renamer.rename_on(hart, core.next_seq, f.pc, &f.inst) else {
                    self.stall_gates[tid] = Some((core.renamer.state_epoch(), core.next_seq, f.pc));
                    stalled_for_regs = true;
                    break;
                };
                self.stall_gates[tid] = None;
                let f = lat[tid].decoded.pop_front().expect("front checked above");
                core.next_seq += uops.len() as u64;
                core.profile.add_work(StageSlot::Rename, uops.len() as u64);
                budget -= 1;
                dispatch.dispatch(
                    core,
                    tid,
                    RenamedBundle {
                        uops,
                        pc: f.pc,
                        inst: f.inst,
                        d: f.d,
                        pred: f.pred,
                    },
                );
            }
            if budget == 0 {
                break;
            }
        }
        if stalled_for_regs {
            core.rename_stall_cycles += 1;
        }
        StageOutcome::Ran
    }
}
