//! Cycle-attribution profiler: where does a detailed-mode host-second go?
//!
//! Two layers, deliberately separated:
//!
//! * **Work counters** — always on, deterministic, one `u64` increment
//!   per unit of stage work (micro-ops fetched, renamed, issued, written
//!   back, committed; recovery squashes). These cost nothing measurable
//!   and are byte-identical across runs, so they can ship in every
//!   report.
//! * **Wall-clock attribution** — per-stage host nanoseconds, gathered
//!   only when [`crate::SimConfig::profile`] is set. Timing the stages
//!   reads the host clock eight times per cycle, so it is opt-in and its
//!   numbers are excluded from golden outputs.
//!
//! `experiments profile` drives both layers and writes
//! `results/profile.json`.

use serde::Serialize;
use std::time::Instant;

/// The stage groups the cycle loop attributes time to, in tick order
/// (commit-first, matching `Pipeline::step`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum StageSlot {
    /// Injection polling, interrupt delivery, recovery-boundary checks.
    Housekeeping,
    /// In-order retirement (including the lockstep oracle when enabled).
    Commit,
    /// Completion drain, wakeup broadcast, branch resolution.
    Writeback,
    /// Select + register read + execute (the fused issue/execute tick).
    Issue,
    /// Rename + dispatch (the fused rename/dispatch tick).
    Rename,
    /// Fetch-queue to decode-queue transfer.
    Decode,
    /// Prediction-following fetch from the program image.
    Fetch,
    /// Invariant audits and occupancy sampling.
    Observe,
}

/// Number of [`StageSlot`]s.
pub const NUM_STAGE_SLOTS: usize = 8;

/// Display names, indexed by `StageSlot as usize`.
pub const STAGE_SLOT_NAMES: [&str; NUM_STAGE_SLOTS] = [
    "housekeeping",
    "commit",
    "writeback",
    "issue",
    "rename",
    "decode",
    "fetch",
    "observe",
];

/// Per-stage cost accounting for one simulation run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct StageProfile {
    /// Deterministic work units per stage (always on): micro-ops moved
    /// through the stage, or events handled for the bookkeeping slots.
    pub work: [u64; NUM_STAGE_SLOTS],
    /// Host nanoseconds per stage; all zero unless
    /// [`crate::SimConfig::profile`] was set.
    pub nanos: [u64; NUM_STAGE_SLOTS],
    /// Whether wall-clock attribution was enabled for this run.
    pub timed: bool,
}

impl StageProfile {
    /// Counts `n` units of deterministic stage work.
    #[inline(always)]
    pub fn add_work(&mut self, slot: StageSlot, n: u64) {
        self.work[slot as usize] += n;
    }

    /// Total attributed host nanoseconds (0 when not timed).
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// The fraction of attributed time spent in `slot` (0 when not
    /// timed).
    pub fn share(&self, slot: StageSlot) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos[slot as usize] as f64 / total as f64
        }
    }
}

/// A lap timer over the stage sequence of one cycle: created at the top
/// of `Pipeline::step`, it charges the elapsed time since the previous
/// lap to each slot. When disabled (the always-on configuration) it
/// never reads the clock.
pub struct StageTimer {
    last: Option<Instant>,
}

impl StageTimer {
    /// Starts the per-cycle timer; `enabled` is
    /// [`crate::SimConfig::profile`].
    #[inline(always)]
    pub fn start(enabled: bool) -> Self {
        StageTimer {
            last: enabled.then(Instant::now), // det-lint: allow — opt-in profile mode only
        }
    }

    /// Charges the time since the previous lap to `slot`.
    #[inline(always)]
    pub fn lap(&mut self, profile: &mut StageProfile, slot: StageSlot) {
        if let Some(prev) = self.last {
            let now = Instant::now(); // det-lint: allow — profile mode only
            profile.nanos[slot as usize] += now.duration_since(prev).as_nanos() as u64;
            self.last = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_records_nothing() {
        let mut p = StageProfile::default();
        let mut t = StageTimer::start(false);
        t.lap(&mut p, StageSlot::Commit);
        t.lap(&mut p, StageSlot::Fetch);
        assert_eq!(p.total_nanos(), 0);
        assert_eq!(p.share(StageSlot::Commit), 0.0);
    }

    #[test]
    fn enabled_timer_attributes_to_slots() {
        let mut p = StageProfile::default();
        let mut t = StageTimer::start(true);
        std::hint::black_box(vec![0u8; 4096]);
        t.lap(&mut p, StageSlot::Commit);
        std::hint::black_box(vec![0u8; 4096]);
        t.lap(&mut p, StageSlot::Fetch);
        assert!(p.nanos[StageSlot::Commit as usize] > 0 || p.nanos[StageSlot::Fetch as usize] > 0);
        let total: f64 = [StageSlot::Commit, StageSlot::Fetch]
            .into_iter()
            .map(|s| p.share(s))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn work_counters_accumulate() {
        let mut p = StageProfile::default();
        p.add_work(StageSlot::Rename, 3);
        p.add_work(StageSlot::Rename, 2);
        assert_eq!(p.work[StageSlot::Rename as usize], 5);
    }

    #[test]
    fn slot_names_cover_every_slot() {
        assert_eq!(STAGE_SLOT_NAMES.len(), NUM_STAGE_SLOTS);
        assert_eq!(STAGE_SLOT_NAMES[StageSlot::Observe as usize], "observe");
    }
}
