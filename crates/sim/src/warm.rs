//! Functional warming: the fast half of the two-speed engine.
//!
//! Paper-scale instruction counts (10⁹) are far beyond what the detailed
//! pipeline can simulate whole. The two-speed engine fast-forwards the
//! program on the functional [`Machine`] while updating only *warmable*
//! microarchitectural state — structures whose contents build up over
//! long histories and would otherwise start every detailed window cold:
//!
//! * caches and the TLB ([`MemWarm`], warmed continuously so a window's
//!   memory state reflects the entire preceding stream);
//! * the branch predictor and the reuse-scheme predictors (warmed in a
//!   short functional lead immediately before each window — they are
//!   small and converge within ~10⁵ instructions, so a bounded lead
//!   reproduces their steady state without paying per-instruction cost
//!   over the whole fast-forward).
//!
//! No pipeline tick happens here: one functionally-retired instruction
//! drives one [`Warmable::warm_retired`] call over the hierarchy's
//! clock-free warming path (`warm_inst`/`warm_data`) — the only timing
//! state in the hierarchy, DRAM bank busy times, is window-local and
//! reset at the warm/detailed handoff, so warming needs no clock at all.

use crate::bpred::BranchPredictor;
use crate::SimConfig;
use regshare_core::ReuseWarmer;
use regshare_isa::{Machine, MachineError, Program, Retired, StopReason};
use regshare_mem::MemoryHierarchy;
use std::time::Instant;

/// Microarchitectural state that can be trained from a functional
/// instruction stream, without a pipeline.
pub trait Warmable {
    /// Updates the structure from one functionally-retired instruction.
    fn warm_retired(&mut self, r: &Retired);
}

/// Continuously-warmed memory state: the cache hierarchy and TLB, plus
/// a last fetched-line filter so sequential instructions in one cache
/// line cost a single I-cache touch.
#[derive(Debug, Clone)]
pub struct MemWarm {
    mem: MemoryHierarchy,
    last_line: Option<u64>,
}

impl MemWarm {
    /// Cold memory state configured like the detailed simulator's.
    pub fn new(config: &SimConfig) -> Self {
        MemWarm {
            mem: MemoryHierarchy::new(config.mem),
            last_line: None,
        }
    }

    /// The warmed hierarchy (caches + TLB), for inspection.
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Consumes the warmer, yielding the hierarchy for a detailed run.
    pub fn into_hierarchy(self) -> MemoryHierarchy {
        self.mem
    }
}

impl Warmable for MemWarm {
    fn warm_retired(&mut self, r: &Retired) {
        // Instruction slots are 4 bytes, cache lines 64: sixteen
        // sequential instructions share a line, so only touch the
        // I-cache when the stream crosses a line boundary.
        let line = r.pc >> 4;
        if self.last_line != Some(line) {
            self.last_line = Some(line);
            self.mem.warm_inst(r.pc * 4);
        }
        if let Some(ea) = r.ea {
            self.mem.warm_data(r.pc * 4, ea, r.inst.opcode.is_store());
        }
    }
}

impl Warmable for BranchPredictor {
    fn warm_retired(&mut self, r: &Retired) {
        if let Some(taken) = r.taken {
            self.warm(r.pc, &r.inst, taken, r.next_pc);
        }
    }
}

impl Warmable for ReuseWarmer {
    fn warm_retired(&mut self, r: &Retired) {
        self.observe(r.pc, &r.inst);
    }
}

/// A functional snapshot of the program mid-stream: everything a
/// detailed window needs to start at `instruction` as if the whole
/// prefix had been simulated — architectural state (registers, memory,
/// PC, inside the cloned [`Machine`]) plus the continuously-warmed
/// memory state.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Retired-instruction position of the snapshot.
    pub instruction: u64,
    /// Architectural machine state at that position.
    pub machine: Machine,
    /// Cache/TLB state warmed by the entire prefix.
    pub mem: MemWarm,
}

/// Drives the functional [`Machine`] forward while warming memory state,
/// taking [`Checkpoint`]s on demand.
///
/// # Examples
///
/// ```
/// use regshare_isa::{reg, Asm};
/// use regshare_sim::{FunctionalWarmer, SimConfig};
///
/// let mut a = Asm::new();
/// a.li(reg::x(1), 100);
/// let top = a.label();
/// a.bind(top);
/// a.subi(reg::x(1), reg::x(1), 1);
/// a.bne(reg::x(1), reg::zero(), top);
/// a.halt();
///
/// let mut w = FunctionalWarmer::new(a.assemble(), &SimConfig::default());
/// w.run_until(50).unwrap();
/// let cp = w.checkpoint();
/// assert_eq!(cp.instruction, 50);
/// assert_eq!(cp.machine.retired(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct FunctionalWarmer {
    machine: Machine,
    mem: MemWarm,
    wall_seconds: f64,
}

impl FunctionalWarmer {
    /// A warmer at the program entry with cold caches.
    pub fn new(program: Program, config: &SimConfig) -> Self {
        FunctionalWarmer {
            machine: Machine::new(program),
            mem: MemWarm::new(config),
            wall_seconds: 0.0,
        }
    }

    /// Fast-forwards to `target` total retired instructions (a no-op if
    /// already past), warming caches and TLB along the way.
    ///
    /// # Errors
    ///
    /// Propagates functional execution faults ([`MachineError`]).
    pub fn run_until(&mut self, target: u64) -> Result<StopReason, MachineError> {
        let started = Instant::now(); // det-lint: allow — wall-clock throughput report only
        let mem = &mut self.mem;
        let result = self.machine.run_observe(target, |r| mem.warm_retired(r));
        self.wall_seconds += started.elapsed().as_secs_f64();
        result
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.machine.retired()
    }

    /// Whether the program ran to its `halt`.
    pub fn is_halted(&self) -> bool {
        self.machine.is_halted()
    }

    /// Host seconds spent fast-forwarding.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_seconds
    }

    /// The underlying functional machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Snapshots the current position (clones machine + warm state).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            instruction: self.machine.retired(),
            machine: self.machine.clone(),
            mem: self.mem.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, Asm};

    fn loop_program(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(reg::x(1), iters);
        a.li(reg::x(2), 0x4_0000);
        let top = a.label();
        a.bind(top);
        a.ld(reg::x(3), reg::x(2), 0);
        a.addi(reg::x(3), reg::x(3), 1);
        a.st(reg::x(3), reg::x(2), 0);
        a.subi(reg::x(1), reg::x(1), 1);
        a.bne(reg::x(1), reg::zero(), top);
        a.halt();
        a.assemble()
    }

    #[test]
    fn warming_advances_and_checkpoints() {
        let mut w = FunctionalWarmer::new(loop_program(1000), &SimConfig::default());
        assert_eq!(w.run_until(100).unwrap(), StopReason::MaxInstructions);
        assert_eq!(w.retired(), 100);
        let cp = w.checkpoint();
        assert_eq!(cp.instruction, 100);
        // The checkpoint is independent of further warming.
        w.run_until(200).unwrap();
        assert_eq!(cp.machine.retired(), 100);
        assert_eq!(w.retired(), 200);
    }

    #[test]
    fn warming_trains_caches_and_tlb() {
        let mut w = FunctionalWarmer::new(loop_program(1000), &SimConfig::default());
        w.run_until(2000).unwrap();
        let h = w.checkpoint().mem;
        let h = h.hierarchy();
        assert!(h.l1d().hit_ratio().fraction() > 0.9, "steady loop hits L1D");
        assert!(h.tlb().hit_ratio().fraction() > 0.9);
    }

    #[test]
    fn warming_stops_at_halt() {
        let mut w = FunctionalWarmer::new(loop_program(10), &SimConfig::default());
        assert_eq!(w.run_until(1_000_000).unwrap(), StopReason::Halted);
        assert!(w.is_halted());
        assert!(w.retired() < 100);
    }

    #[test]
    fn checkpoint_resumes_identically() {
        // Warming A→B in one pass or via a checkpoint clone must agree.
        let mut w = FunctionalWarmer::new(loop_program(1000), &SimConfig::default());
        w.run_until(500).unwrap();
        let mut resumed = FunctionalWarmer {
            machine: w.checkpoint().machine,
            mem: w.checkpoint().mem,
            wall_seconds: 0.0,
        };
        w.run_until(900).unwrap();
        resumed.run_until(900).unwrap();
        assert_eq!(w.machine().pc(), resumed.machine().pc());
        assert_eq!(
            w.checkpoint().mem.hierarchy().l1d().hit_ratio().fraction(),
            resumed
                .checkpoint()
                .mem
                .hierarchy()
                .l1d()
                .hit_ratio()
                .fraction()
        );
    }
}
