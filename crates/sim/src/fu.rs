//! Functional-unit pools with pipelining and structural hazards.

use crate::config::FuConfig;
use regshare_isa::OpClass;

/// All functional units of the core, grouped per [`OpClass`].
///
/// Pipelined pools accept one operation per unit per cycle; unpipelined
/// pools (divides) occupy a unit for the full latency.
///
/// # Examples
///
/// ```
/// use regshare_sim::{FuPool, SimConfig};
/// use regshare_isa::OpClass;
///
/// let mut fus = FuPool::new(&SimConfig::default());
/// assert!(fus.try_issue(OpClass::IntDiv, 0).is_some());
/// assert!(fus.try_issue(OpClass::IntDiv, 0).is_none()); // unit busy
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    pools: Vec<(OpClass, FuConfig, Vec<u64>)>, // busy-until per unit
}

impl FuPool {
    /// Creates the pools from the simulator configuration.
    pub fn new(config: &crate::SimConfig) -> Self {
        let pools = config
            .fus
            .iter()
            .map(|(class, fu)| (*class, *fu, vec![0u64; fu.count]))
            .collect();
        FuPool { pools }
    }

    /// Attempts to claim a unit of `class` at cycle `now`. Returns the
    /// operation latency on success; the unit is occupied for one cycle
    /// (pipelined) or the full latency (unpipelined).
    pub fn try_issue(&mut self, class: OpClass, now: u64) -> Option<u32> {
        let (_, fu, units) = self
            .pools
            .iter_mut()
            .find(|(c, _, _)| *c == class)
            .unwrap_or_else(|| panic!("no functional unit for {class}"));
        let unit = units.iter_mut().find(|busy| **busy <= now)?;
        *unit = now + if fu.pipelined { 1 } else { fu.latency as u64 };
        Some(fu.latency)
    }

    /// The configured latency of a class (without claiming a unit).
    pub fn latency(&self, class: OpClass) -> u32 {
        self.pools
            .iter()
            .find(|(c, _, _)| *c == class)
            .map(|(_, f, _)| f.latency)
            .unwrap_or_else(|| panic!("no functional unit for {class}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;

    #[test]
    fn pipelined_units_accept_one_per_cycle() {
        let mut fus = FuPool::new(&SimConfig::default());
        // 2 IntAlu units.
        assert!(fus.try_issue(OpClass::IntAlu, 0).is_some());
        assert!(fus.try_issue(OpClass::IntAlu, 0).is_some());
        assert!(fus.try_issue(OpClass::IntAlu, 0).is_none());
        // Next cycle both are free again.
        assert!(fus.try_issue(OpClass::IntAlu, 1).is_some());
        assert!(fus.try_issue(OpClass::IntAlu, 1).is_some());
    }

    #[test]
    fn unpipelined_divide_blocks_for_full_latency() {
        let cfg = SimConfig::default();
        let lat = cfg.fu(OpClass::IntDiv).latency as u64;
        let mut fus = FuPool::new(&cfg);
        assert!(fus.try_issue(OpClass::IntDiv, 0).is_some());
        assert!(fus.try_issue(OpClass::IntDiv, lat - 1).is_none());
        assert!(fus.try_issue(OpClass::IntDiv, lat).is_some());
    }

    #[test]
    fn latency_lookup_matches_config() {
        let cfg = SimConfig::default();
        let fus = FuPool::new(&cfg);
        assert_eq!(fus.latency(OpClass::FpMul), cfg.fu(OpClass::FpMul).latency);
    }
}
