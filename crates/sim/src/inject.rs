//! Deterministic fault-injection schedules.
//!
//! The paper's correctness story rests on precise state recovery through
//! the shadow-cell register file; workloads alone exercise only the
//! recovery paths their branches happen to take. An [`InjectSchedule`]
//! drives the machinery adversarially: seeded asynchronous interrupts,
//! forced load/store faults, forced branch-prediction flips and squash
//! storms land at arbitrary cycles — including nested events arriving
//! mid-recovery — while the lockstep oracle and the invariant auditor
//! check that architectural state and renamer bookkeeping survive.
//!
//! Schedules are pure data derived from a seed with a splitmix64 stream,
//! so a campaign is reproducible from `(kernel, scheme, seed)` alone.

/// The kind of one injected event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InjectKind {
    /// Asynchronous interrupt: flush the entire speculative window at the
    /// next commit boundary and refetch from the oldest unretired
    /// instruction. Architecturally transparent.
    Interrupt,
    /// Force the next load to take a synchronous memory fault; it retries
    /// (successfully) after the precise exception flush.
    LoadFault,
    /// Force the next store to take a synchronous memory fault.
    StoreFault,
    /// Invert the next conditional-branch prediction, manufacturing a
    /// misprediction (or, for an about-to-mispredict branch, a correct
    /// prediction) the workload would not produce on its own.
    BranchFlip,
    /// Squash storm: pick a completed in-flight micro-op and squash
    /// everything younger, as a resolving branch would.
    SquashStorm,
}

/// One scheduled event: `kind` fires at the first opportunity at or after
/// `cycle`. `pick` selects among candidates where the event needs one
/// (e.g. which in-flight micro-op a squash storm cuts at).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectEvent {
    /// Cycle at which the event becomes pending.
    pub cycle: u64,
    /// What to inject.
    pub kind: InjectKind,
    /// Candidate selector for events that need one.
    pub pick: u8,
}

/// A deterministic schedule of injected events for one simulation run.
///
/// # Examples
///
/// ```
/// use regshare_sim::InjectSchedule;
///
/// let a = InjectSchedule::seeded(42, 10_000);
/// let b = InjectSchedule::seeded(42, 10_000);
/// assert_eq!(a, b); // reproducible from the seed
/// assert!(!a.events.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectSchedule {
    /// Events ordered by cycle.
    pub events: Vec<InjectEvent>,
    /// Mispredict ordinals (0 = the first branch misprediction of the
    /// run) at which an interrupt is delivered *in the same cycle* as the
    /// misprediction squash — the nested-recovery case.
    pub interrupts_on_mispredict: Vec<u64>,
}

/// Splitmix64: a tiny, high-quality PRNG step. Good enough to scatter
/// events, dependency-free, and stable across platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl InjectSchedule {
    /// Derives a schedule from `seed`, spreading events over roughly
    /// `horizon` cycles (clamped to at least 1000). Every seed yields
    /// 1–3 interrupts, 0–2 forced faults of each kind, 0–3 branch flips,
    /// 0–2 squash storms and 0–2 nested interrupt-on-mispredict events.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut s = seed;
        let horizon = horizon.max(1_000);
        let cycle = |s: &mut u64| 100 + splitmix64(s) % (horizon - 100);
        let mut events = Vec::new();
        let counts = [
            (InjectKind::Interrupt, 1 + (splitmix64(&mut s) % 3)),
            (InjectKind::LoadFault, splitmix64(&mut s) % 3),
            (InjectKind::StoreFault, splitmix64(&mut s) % 3),
            (InjectKind::BranchFlip, splitmix64(&mut s) % 4),
            (InjectKind::SquashStorm, splitmix64(&mut s) % 3),
        ];
        for (kind, n) in counts {
            for _ in 0..n {
                events.push(InjectEvent {
                    cycle: cycle(&mut s),
                    kind,
                    pick: (splitmix64(&mut s) & 0xFF) as u8,
                });
            }
        }
        events.sort_by_key(|e| (e.cycle, e.kind, e.pick));
        let mut interrupts_on_mispredict: Vec<u64> = (0..splitmix64(&mut s) % 3)
            .map(|_| splitmix64(&mut s) % 40)
            .collect();
        interrupts_on_mispredict.sort_unstable();
        interrupts_on_mispredict.dedup();
        InjectSchedule {
            events,
            interrupts_on_mispredict,
        }
    }
}

/// Counts of events actually delivered during a run (a scheduled event
/// lands only if the pipeline reaches its cycle with a matching
/// opportunity, e.g. a branch flip needs a later conditional branch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectStats {
    /// Asynchronous interrupts delivered.
    pub interrupts: u64,
    /// Interrupts delivered in the same cycle as a misprediction squash.
    pub nested_interrupts: u64,
    /// Forced load faults consumed by a load.
    pub load_faults: u64,
    /// Forced store faults consumed by a store.
    pub store_faults: u64,
    /// Branch predictions inverted at fetch.
    pub branch_flips: u64,
    /// Squash storms executed against an in-flight micro-op.
    pub squash_storms: u64,
}

impl InjectStats {
    /// Total events delivered.
    pub fn total(&self) -> u64 {
        self.interrupts
            + self.load_faults
            + self.store_faults
            + self.branch_flips
            + self.squash_storms
    }
}

/// Live injection state inside the pipeline: the schedule, a cursor over
/// it, and the armed one-shot flags events translate into.
#[derive(Debug, Clone, Default)]
pub(crate) struct InjectState {
    pub(crate) events: Vec<InjectEvent>,
    pub(crate) next: usize,
    pub(crate) nested_ordinals: Vec<u64>,
    /// Branch mispredictions observed so far (indexes `nested_ordinals`).
    pub(crate) mispredicts_seen: u64,
    /// An interrupt is pending delivery at the next boundary.
    pub(crate) pending_interrupt: bool,
    /// The next load to issue takes a forced fault.
    pub(crate) armed_load_fault: bool,
    /// The next store to issue takes a forced fault.
    pub(crate) armed_store_fault: bool,
    /// The next conditional-branch prediction is inverted at fetch.
    pub(crate) armed_flip: bool,
    pub(crate) stats: InjectStats,
}

impl InjectState {
    pub(crate) fn new(schedule: InjectSchedule) -> Self {
        InjectState {
            events: schedule.events,
            nested_ordinals: schedule.interrupts_on_mispredict,
            ..InjectState::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_are_deterministic_and_sorted() {
        for seed in 0..50u64 {
            let a = InjectSchedule::seeded(seed, 20_000);
            let b = InjectSchedule::seeded(seed, 20_000);
            assert_eq!(a, b);
            assert!(a.events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
            assert!(!a.events.is_empty(), "at least one interrupt per seed");
            assert!(a.events.iter().all(|e| e.cycle >= 100));
            assert!(a.events.iter().all(|e| e.cycle < 20_000));
        }
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(
            InjectSchedule::seeded(1, 10_000),
            InjectSchedule::seeded(2, 10_000)
        );
    }

    #[test]
    fn tiny_horizon_is_clamped() {
        let s = InjectSchedule::seeded(9, 0);
        assert!(s.events.iter().all(|e| e.cycle < 1_000));
    }

    #[test]
    fn nested_ordinals_sorted_dedup() {
        for seed in 0..50u64 {
            let s = InjectSchedule::seeded(seed, 5_000);
            let o = &s.interrupts_on_mispredict;
            assert!(o.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
