//! Split load/store queues with store-to-load forwarding.

use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    seq: u64,
    addr: Option<u64>,
    width: u8,
    value: Option<u64>,
}

/// Malformed load/store-queue state detected on the issue or commit path:
/// which micro-op was involved and what was wrong with the queue entry.
/// The pipeline wraps this into `SimError::Lsq` together with a pipeline
/// snapshot, so injection campaigns report instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsqError {
    /// Sequence number of the offending micro-op.
    pub seq: u64,
    /// What the queue expected and what it found.
    pub detail: String,
}

impl std::fmt::Display for LsqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lsq entry seq {}: {}", self.seq, self.detail)
    }
}

impl std::error::Error for LsqError {}

/// What a load finds when it searches the store queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreSearch {
    /// No older store overlaps: read memory.
    Memory,
    /// An older store to the same address fully covers the load: forward
    /// these bits (already masked to the load width).
    Forward(u64),
    /// An older store overlaps partially (or its data is not ready): the
    /// load must wait until that store commits.
    Conflict {
        /// Sequence number of the blocking store.
        store_seq: u64,
    },
}

/// The load/store queues of the pipeline.
///
/// Stores enter at dispatch and hold address/data once they execute; data
/// is written to memory at commit. Loads may only execute once every older
/// store has a known address (conservative, no memory-dependence
/// speculation); they then either forward from the youngest older
/// matching store or read committed memory.
///
/// # Examples
///
/// ```
/// use regshare_sim::{LoadStoreQueue, StoreSearch};
///
/// let mut lsq = LoadStoreQueue::new(8, 8);
/// lsq.dispatch_store(0);
/// lsq.resolve_store(0, 0x100, 8, 42).unwrap();
/// assert_eq!(lsq.search(2, 0x100, 8), Ok(StoreSearch::Forward(42)));
/// assert_eq!(lsq.search(2, 0x200, 8), Ok(StoreSearch::Memory));
/// ```
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    stores: VecDeque<StoreEntry>,
    loads: VecDeque<u64>, // seqs, for occupancy only
    lq_cap: usize,
    sq_cap: usize,
}

fn ranges_overlap(a: u64, aw: u8, b: u64, bw: u8) -> bool {
    a < b + bw as u64 && b < a + aw as u64
}

impl LoadStoreQueue {
    /// Creates empty queues with the given capacities.
    pub fn new(lq_cap: usize, sq_cap: usize) -> Self {
        LoadStoreQueue {
            stores: VecDeque::new(),
            loads: VecDeque::new(),
            lq_cap,
            sq_cap,
        }
    }

    /// Whether a load (and/or store) can be dispatched right now.
    pub fn has_room(&self, loads: usize, stores: usize) -> bool {
        self.loads.len() + loads <= self.lq_cap && self.stores.len() + stores <= self.sq_cap
    }

    /// Dispatches a store entry (address/data unknown).
    pub fn dispatch_store(&mut self, seq: u64) {
        self.stores.push_back(StoreEntry {
            seq,
            addr: None,
            width: 0,
            value: None,
        });
    }

    /// Dispatches a load entry.
    pub fn dispatch_load(&mut self, seq: u64) {
        self.loads.push_back(seq);
    }

    /// Records a store's address and data after it executes. Errors if
    /// the store is not in the queue.
    pub fn resolve_store(
        &mut self,
        seq: u64,
        addr: u64,
        width: u8,
        value: u64,
    ) -> Result<(), LsqError> {
        let Some(e) = self.stores.iter_mut().find(|e| e.seq == seq) else {
            return Err(LsqError {
                seq,
                detail: "resolving a store that is not in the queue".into(),
            });
        };
        e.addr = Some(addr);
        e.width = width;
        e.value = Some(value);
        Ok(())
    }

    /// True when every store older than `seq` has a resolved address —
    /// the condition for a load at `seq` to execute.
    pub fn older_stores_resolved(&self, seq: u64) -> bool {
        self.stores
            .iter()
            .take_while(|e| e.seq < seq)
            .all(|e| e.addr.is_some())
    }

    /// Searches older stores for one supplying (or blocking) a load of
    /// `width` bytes at `addr`. Errors on a resolved store entry with no
    /// data (malformed forwarding state).
    pub fn search(&self, seq: u64, addr: u64, width: u8) -> Result<StoreSearch, LsqError> {
        // Youngest older store wins.
        for e in self.stores.iter().rev() {
            if e.seq >= seq {
                continue;
            }
            let Some(saddr) = e.addr else {
                return Ok(StoreSearch::Conflict { store_seq: e.seq });
            };
            if !ranges_overlap(addr, width, saddr, e.width) {
                continue;
            }
            if saddr == addr && e.width >= width {
                let Some(bits) = e.value else {
                    return Err(LsqError {
                        seq: e.seq,
                        detail: format!(
                            "store resolved to {saddr:#x}/{} has no data to forward",
                            e.width
                        ),
                    });
                };
                let masked = if width == 8 {
                    bits
                } else {
                    bits & ((1u64 << (width * 8)) - 1)
                };
                return Ok(StoreSearch::Forward(masked));
            }
            return Ok(StoreSearch::Conflict { store_seq: e.seq });
        }
        Ok(StoreSearch::Memory)
    }

    /// Removes a committed store from the queue, returning its
    /// address/width/value for the memory write. Errors if `seq` is not
    /// the oldest store or the entry is unresolved.
    pub fn commit_store(&mut self, seq: u64) -> Result<(u64, u8, u64), LsqError> {
        let Some(e) = self.stores.pop_front() else {
            return Err(LsqError {
                seq,
                detail: "committing store from an empty queue".into(),
            });
        };
        if e.seq != seq {
            return Err(LsqError {
                seq,
                detail: format!("stores must commit in order (queue head is seq {})", e.seq),
            });
        }
        let (Some(addr), Some(value)) = (e.addr, e.value) else {
            return Err(LsqError {
                seq,
                detail: format!(
                    "committing unresolved store (addr {:?}, value {:?})",
                    e.addr, e.value
                ),
            });
        };
        Ok((addr, e.width, value))
    }

    /// Removes a committed load. Errors if `seq` is not the oldest load.
    pub fn commit_load(&mut self, seq: u64) -> Result<(), LsqError> {
        let Some(head) = self.loads.pop_front() else {
            return Err(LsqError {
                seq,
                detail: "committing load from an empty queue".into(),
            });
        };
        if head != seq {
            return Err(LsqError {
                seq,
                detail: format!("loads must commit in order (queue head is seq {head})"),
            });
        }
        Ok(())
    }

    /// Drops every entry younger than `seq` (mis-speculation squash).
    pub fn squash_after(&mut self, seq: u64) {
        while matches!(self.stores.back(), Some(e) if e.seq > seq) {
            self.stores.pop_back();
        }
        while matches!(self.loads.back(), Some(s) if *s > seq) {
            self.loads.pop_back();
        }
    }

    /// Current store-queue occupancy.
    pub fn stores_len(&self) -> usize {
        self.stores.len()
    }

    /// Current load-queue occupancy.
    pub fn loads_len(&self) -> usize {
        self.loads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_masks_to_load_width() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        lsq.resolve_store(0, 0x10, 8, 0xAABB_CCDD_EEFF_1122)
            .unwrap();
        assert_eq!(lsq.search(1, 0x10, 1), Ok(StoreSearch::Forward(0x22)));
        assert_eq!(
            lsq.search(1, 0x10, 4),
            Ok(StoreSearch::Forward(0xEEFF_1122))
        );
        assert_eq!(
            lsq.search(1, 0x10, 8),
            Ok(StoreSearch::Forward(0xAABB_CCDD_EEFF_1122))
        );
    }

    #[test]
    fn unresolved_older_store_blocks() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        assert!(!lsq.older_stores_resolved(1));
        assert_eq!(
            lsq.search(1, 0x10, 8),
            Ok(StoreSearch::Conflict { store_seq: 0 })
        );
        lsq.resolve_store(0, 0x999, 8, 1).unwrap();
        assert!(lsq.older_stores_resolved(1));
        assert_eq!(lsq.search(1, 0x10, 8), Ok(StoreSearch::Memory));
    }

    #[test]
    fn partial_overlap_conflicts() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        lsq.resolve_store(0, 0x10, 4, 7).unwrap(); // narrower than the load
        assert_eq!(
            lsq.search(1, 0x10, 8),
            Ok(StoreSearch::Conflict { store_seq: 0 })
        );
        // Offset overlap.
        assert_eq!(
            lsq.search(1, 0x12, 8),
            Ok(StoreSearch::Conflict { store_seq: 0 })
        );
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        lsq.dispatch_store(1);
        lsq.resolve_store(0, 0x10, 8, 111).unwrap();
        lsq.resolve_store(1, 0x10, 8, 222).unwrap();
        assert_eq!(lsq.search(2, 0x10, 8), Ok(StoreSearch::Forward(222)));
        // A load older than store 1 sees store 0.
        assert_eq!(lsq.search(1, 0x10, 8), Ok(StoreSearch::Forward(111)));
    }

    #[test]
    fn commit_pops_in_order() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        lsq.dispatch_load(1);
        lsq.resolve_store(0, 8, 8, 5).unwrap();
        assert_eq!(lsq.commit_store(0).unwrap(), (8, 8, 5));
        lsq.commit_load(1).unwrap();
        assert_eq!(lsq.stores_len(), 0);
        assert_eq!(lsq.loads_len(), 0);
    }

    #[test]
    fn malformed_states_error_with_offending_entry() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        // Resolving an absent store.
        let e = lsq.resolve_store(7, 0x10, 8, 1).unwrap_err();
        assert_eq!(e.seq, 7);
        assert!(e.to_string().contains("not in the queue"));
        // Committing from empty queues.
        assert!(lsq.commit_store(0).unwrap_err().detail.contains("empty"));
        assert!(lsq.commit_load(0).unwrap_err().detail.contains("empty"));
        // Out-of-order commits.
        lsq.dispatch_store(2);
        lsq.dispatch_load(3);
        lsq.resolve_store(2, 0x20, 8, 9).unwrap();
        assert!(lsq.commit_store(5).unwrap_err().detail.contains("in order"));
        assert!(lsq.commit_load(5).unwrap_err().detail.contains("in order"));
        // Committing an unresolved store.
        let mut lsq2 = LoadStoreQueue::new(4, 4);
        lsq2.dispatch_store(0);
        let e = lsq2.commit_store(0).unwrap_err();
        assert_eq!(e.seq, 0);
        assert!(e.detail.contains("unresolved"));
    }

    #[test]
    fn squash_drops_younger_entries() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        lsq.dispatch_load(1);
        lsq.dispatch_store(2);
        lsq.dispatch_load(3);
        lsq.squash_after(1);
        assert_eq!(lsq.stores_len(), 1);
        assert_eq!(lsq.loads_len(), 1);
    }

    #[test]
    fn capacity_check() {
        let lsq = LoadStoreQueue::new(1, 1);
        assert!(lsq.has_room(1, 1));
        assert!(!lsq.has_room(2, 0));
    }
}
