//! Split load/store queues with store-to-load forwarding.

use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    seq: u64,
    addr: Option<u64>,
    width: u8,
    value: Option<u64>,
}

/// What a load finds when it searches the store queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreSearch {
    /// No older store overlaps: read memory.
    Memory,
    /// An older store to the same address fully covers the load: forward
    /// these bits (already masked to the load width).
    Forward(u64),
    /// An older store overlaps partially (or its data is not ready): the
    /// load must wait until that store commits.
    Conflict {
        /// Sequence number of the blocking store.
        store_seq: u64,
    },
}

/// The load/store queues of the pipeline.
///
/// Stores enter at dispatch and hold address/data once they execute; data
/// is written to memory at commit. Loads may only execute once every older
/// store has a known address (conservative, no memory-dependence
/// speculation); they then either forward from the youngest older
/// matching store or read committed memory.
///
/// # Examples
///
/// ```
/// use regshare_sim::{LoadStoreQueue, StoreSearch};
///
/// let mut lsq = LoadStoreQueue::new(8, 8);
/// lsq.dispatch_store(0);
/// lsq.resolve_store(0, 0x100, 8, 42);
/// assert_eq!(lsq.search(2, 0x100, 8), StoreSearch::Forward(42));
/// assert_eq!(lsq.search(2, 0x200, 8), StoreSearch::Memory);
/// ```
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    stores: VecDeque<StoreEntry>,
    loads: VecDeque<u64>, // seqs, for occupancy only
    lq_cap: usize,
    sq_cap: usize,
}

fn ranges_overlap(a: u64, aw: u8, b: u64, bw: u8) -> bool {
    a < b + bw as u64 && b < a + aw as u64
}

impl LoadStoreQueue {
    /// Creates empty queues with the given capacities.
    pub fn new(lq_cap: usize, sq_cap: usize) -> Self {
        LoadStoreQueue {
            stores: VecDeque::new(),
            loads: VecDeque::new(),
            lq_cap,
            sq_cap,
        }
    }

    /// Whether a load (and/or store) can be dispatched right now.
    pub fn has_room(&self, loads: usize, stores: usize) -> bool {
        self.loads.len() + loads <= self.lq_cap && self.stores.len() + stores <= self.sq_cap
    }

    /// Dispatches a store entry (address/data unknown).
    pub fn dispatch_store(&mut self, seq: u64) {
        self.stores.push_back(StoreEntry {
            seq,
            addr: None,
            width: 0,
            value: None,
        });
    }

    /// Dispatches a load entry.
    pub fn dispatch_load(&mut self, seq: u64) {
        self.loads.push_back(seq);
    }

    /// Records a store's address and data after it executes.
    ///
    /// # Panics
    ///
    /// Panics if the store is not in the queue.
    pub fn resolve_store(&mut self, seq: u64, addr: u64, width: u8, value: u64) {
        let e = self
            .stores
            .iter_mut()
            .find(|e| e.seq == seq)
            .expect("resolving a store that is not in the queue");
        e.addr = Some(addr);
        e.width = width;
        e.value = Some(value);
    }

    /// True when every store older than `seq` has a resolved address —
    /// the condition for a load at `seq` to execute.
    pub fn older_stores_resolved(&self, seq: u64) -> bool {
        self.stores
            .iter()
            .take_while(|e| e.seq < seq)
            .all(|e| e.addr.is_some())
    }

    /// Searches older stores for one supplying (or blocking) a load of
    /// `width` bytes at `addr`.
    pub fn search(&self, seq: u64, addr: u64, width: u8) -> StoreSearch {
        // Youngest older store wins.
        for e in self.stores.iter().rev() {
            if e.seq >= seq {
                continue;
            }
            let Some(saddr) = e.addr else {
                return StoreSearch::Conflict { store_seq: e.seq };
            };
            if !ranges_overlap(addr, width, saddr, e.width) {
                continue;
            }
            if saddr == addr && e.width >= width {
                let bits = e.value.expect("resolved store always has data");
                let masked = if width == 8 {
                    bits
                } else {
                    bits & ((1u64 << (width * 8)) - 1)
                };
                return StoreSearch::Forward(masked);
            }
            return StoreSearch::Conflict { store_seq: e.seq };
        }
        StoreSearch::Memory
    }

    /// Removes a committed store from the queue, returning its
    /// address/width/value for the memory write.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not the oldest store or is unresolved.
    pub fn commit_store(&mut self, seq: u64) -> (u64, u8, u64) {
        let e = self
            .stores
            .pop_front()
            .expect("committing store from an empty queue");
        assert_eq!(e.seq, seq, "stores must commit in order");
        (
            e.addr.expect("committed store must be resolved"),
            e.width,
            e.value.expect("committed store must have data"),
        )
    }

    /// Removes a committed load.
    pub fn commit_load(&mut self, seq: u64) {
        let head = self
            .loads
            .pop_front()
            .expect("committing load from an empty queue");
        assert_eq!(head, seq, "loads must commit in order");
    }

    /// Drops every entry younger than `seq` (mis-speculation squash).
    pub fn squash_after(&mut self, seq: u64) {
        while matches!(self.stores.back(), Some(e) if e.seq > seq) {
            self.stores.pop_back();
        }
        while matches!(self.loads.back(), Some(s) if *s > seq) {
            self.loads.pop_back();
        }
    }

    /// Current store-queue occupancy.
    pub fn stores_len(&self) -> usize {
        self.stores.len()
    }

    /// Current load-queue occupancy.
    pub fn loads_len(&self) -> usize {
        self.loads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_masks_to_load_width() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        lsq.resolve_store(0, 0x10, 8, 0xAABB_CCDD_EEFF_1122);
        assert_eq!(lsq.search(1, 0x10, 1), StoreSearch::Forward(0x22));
        assert_eq!(lsq.search(1, 0x10, 4), StoreSearch::Forward(0xEEFF_1122));
        assert_eq!(
            lsq.search(1, 0x10, 8),
            StoreSearch::Forward(0xAABB_CCDD_EEFF_1122)
        );
    }

    #[test]
    fn unresolved_older_store_blocks() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        assert!(!lsq.older_stores_resolved(1));
        assert_eq!(
            lsq.search(1, 0x10, 8),
            StoreSearch::Conflict { store_seq: 0 }
        );
        lsq.resolve_store(0, 0x999, 8, 1);
        assert!(lsq.older_stores_resolved(1));
        assert_eq!(lsq.search(1, 0x10, 8), StoreSearch::Memory);
    }

    #[test]
    fn partial_overlap_conflicts() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        lsq.resolve_store(0, 0x10, 4, 7); // narrower than the load
        assert_eq!(
            lsq.search(1, 0x10, 8),
            StoreSearch::Conflict { store_seq: 0 }
        );
        // Offset overlap.
        assert_eq!(
            lsq.search(1, 0x12, 8),
            StoreSearch::Conflict { store_seq: 0 }
        );
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        lsq.dispatch_store(1);
        lsq.resolve_store(0, 0x10, 8, 111);
        lsq.resolve_store(1, 0x10, 8, 222);
        assert_eq!(lsq.search(2, 0x10, 8), StoreSearch::Forward(222));
        // A load older than store 1 sees store 0.
        assert_eq!(lsq.search(1, 0x10, 8), StoreSearch::Forward(111));
    }

    #[test]
    fn commit_pops_in_order() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        lsq.dispatch_load(1);
        lsq.resolve_store(0, 8, 8, 5);
        assert_eq!(lsq.commit_store(0), (8, 8, 5));
        lsq.commit_load(1);
        assert_eq!(lsq.stores_len(), 0);
        assert_eq!(lsq.loads_len(), 0);
    }

    #[test]
    fn squash_drops_younger_entries() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.dispatch_store(0);
        lsq.dispatch_load(1);
        lsq.dispatch_store(2);
        lsq.dispatch_load(3);
        lsq.squash_after(1);
        assert_eq!(lsq.stores_len(), 1);
        assert_eq!(lsq.loads_len(), 1);
    }

    #[test]
    fn capacity_check() {
        let lsq = LoadStoreQueue::new(1, 1);
        assert!(lsq.has_room(1, 1));
        assert!(!lsq.has_room(2, 0));
    }
}
