//! Pluggable scheduling, fetch-arbitration and recovery policies,
//! selected through [`SimConfig`] ([`crate::IssuePolicyKind`],
//! [`crate::FetchPolicyKind`], [`crate::RecoveryPolicyKind`]) so
//! experiments can sweep them.

use crate::config::{FetchPolicyKind, IssuePolicyKind, RecoveryPolicyKind};
use crate::SimConfig;

/// The issue stage's selection order: given the operand-ready micro-ops
/// in sequence order, emit the candidate order the select ports should
/// consider them in. Selection is still bounded by
/// [`SimConfig::issue_width`] and by structural hazards downstream;
/// candidates that fail to issue retry next cycle.
pub trait IssueSelect {
    /// A short label for reports and sweeps.
    fn name(&self) -> &'static str;

    /// Appends the candidate order to `out`. `ready` is sorted by
    /// sequence number (oldest first) and `out` arrives empty.
    fn select(&self, ready: &[u64], out: &mut Vec<u64>);
}

/// Oldest-first (age-ordered) select — the classic select matrix and the
/// order the paper's results assume. This is the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct OldestFirst;

impl IssueSelect for OldestFirst {
    fn name(&self) -> &'static str {
        "oldest-first"
    }

    fn select(&self, ready: &[u64], out: &mut Vec<u64>) {
        out.extend_from_slice(ready);
    }
}

/// Youngest-first select — an adversarial order that starves old
/// micro-ops and maximises in-flight reordering; useful for stressing
/// dependence tracking and recovery, not for performance.
#[derive(Debug, Clone, Copy, Default)]
pub struct YoungestFirst;

impl IssueSelect for YoungestFirst {
    fn name(&self) -> &'static str {
        "youngest-first"
    }

    fn select(&self, ready: &[u64], out: &mut Vec<u64>) {
        out.extend(ready.iter().rev());
    }
}

/// Fetch-thread arbitration: each cycle the fetch stage offers the
/// policy every hardware thread's eligibility (not halted, not
/// redirect-stalled, fetch queue has room) and in-flight micro-op count
/// (ROB partition plus front-end latches), and the policy picks at most
/// one thread to own the fetch ports that cycle.
///
/// With a single resident thread every policy degenerates to "fetch for
/// thread 0 when eligible", keeping single-thread runs byte-identical.
pub trait FetchPolicy {
    /// A short label for reports and sweeps.
    fn name(&self) -> &'static str;

    /// Picks the thread to fetch for on `cycle`, or `None` when no
    /// thread is eligible. `eligible` and `in_flight` are indexed by
    /// thread id and always have the same length.
    fn pick(&mut self, cycle: u64, eligible: &[bool], in_flight: &[usize]) -> Option<usize>;
}

/// Cycle-rotating fetch: start the scan at `cycle % threads` and take
/// the first eligible thread. Fair under symmetric load; the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinFetch;

impl FetchPolicy for RoundRobinFetch {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, cycle: u64, eligible: &[bool], _in_flight: &[usize]) -> Option<usize> {
        let n = eligible.len();
        (0..n)
            .map(|k| (cycle as usize + k) % n)
            .find(|&t| eligible[t])
    }
}

/// ICOUNT fetch (Tullsen et al., ISCA '96): pick the eligible thread
/// with the fewest micro-ops in flight, breaking ties toward the lowest
/// thread id. Threads blocked on long-latency misses accumulate
/// in-flight work and automatically yield fetch to faster threads.
#[derive(Debug, Clone, Copy, Default)]
pub struct IcountFetch;

impl FetchPolicy for IcountFetch {
    fn name(&self) -> &'static str {
        "icount"
    }

    fn pick(&mut self, _cycle: u64, eligible: &[bool], in_flight: &[usize]) -> Option<usize> {
        (0..eligible.len())
            .filter(|&t| eligible[t])
            .min_by_key(|&t| (in_flight[t], t))
    }
}

/// How a mis-speculation recovery is charged. Every recovery performs
/// the identical architectural restore — ROB/IQ/LSQ squash, rename
/// checkpoint walk, shadow-cell recover commands — through one shared
/// code path; the policy only decides how many extra redirect cycles
/// that restore costs.
pub trait RecoveryPolicy {
    /// A short label for reports and sweeps.
    fn name(&self) -> &'static str;

    /// Extra redirect cycles for a recovery that executed `recovers`
    /// shadow-cell recover commands.
    fn extra_cycles(&self, recovers: u32, config: &SimConfig) -> u32;
}

/// Checkpoint-walk recovery: recover commands drain at
/// [`SimConfig::recover_bandwidth`] per cycle, so deep reuse chains
/// lengthen the redirect (§IV-C1). The paper's model and the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointWalk;

impl RecoveryPolicy for CheckpointWalk {
    fn name(&self) -> &'static str {
        "checkpoint-walk"
    }

    fn extra_cycles(&self, recovers: u32, config: &SimConfig) -> u32 {
        recovers.div_ceil(config.recover_bandwidth.max(1))
    }
}

/// Squash-all recovery: every shadow cell restores in parallel inside
/// the redirect bubble, charging no extra cycles — the idealised
/// checkpoint-RAM recovery that conventional map-table checkpointing
/// approximates.
#[derive(Debug, Clone, Copy, Default)]
pub struct SquashAll;

impl RecoveryPolicy for SquashAll {
    fn name(&self) -> &'static str {
        "squash-all"
    }

    fn extra_cycles(&self, _recovers: u32, _config: &SimConfig) -> u32 {
        0
    }
}

impl IssuePolicyKind {
    /// Instantiates the configured [`IssueSelect`] implementation.
    pub fn build(self) -> Box<dyn IssueSelect> {
        match self {
            IssuePolicyKind::OldestFirst => Box::new(OldestFirst),
            IssuePolicyKind::YoungestFirst => Box::new(YoungestFirst),
        }
    }
}

impl FetchPolicyKind {
    /// Instantiates the configured [`FetchPolicy`] implementation.
    pub fn build(self) -> Box<dyn FetchPolicy> {
        match self {
            FetchPolicyKind::RoundRobin => Box::new(RoundRobinFetch),
            FetchPolicyKind::Icount => Box::new(IcountFetch),
        }
    }
}

impl RecoveryPolicyKind {
    /// Instantiates the configured [`RecoveryPolicy`] implementation.
    pub fn build(self) -> Box<dyn RecoveryPolicy> {
        match self {
            RecoveryPolicyKind::CheckpointWalk => Box::new(CheckpointWalk),
            RecoveryPolicyKind::SquashAll => Box::new(SquashAll),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_first_preserves_sequence_order() {
        let mut out = Vec::new();
        OldestFirst.select(&[3, 7, 9], &mut out);
        assert_eq!(out, vec![3, 7, 9]);
        assert_eq!(OldestFirst.name(), "oldest-first");
    }

    #[test]
    fn youngest_first_reverses() {
        let mut out = Vec::new();
        YoungestFirst.select(&[3, 7, 9], &mut out);
        assert_eq!(out, vec![9, 7, 3]);
        assert_eq!(YoungestFirst.name(), "youngest-first");
    }

    #[test]
    fn checkpoint_walk_charges_by_bandwidth() {
        let mut c = SimConfig {
            recover_bandwidth: 4,
            ..SimConfig::default()
        };
        assert_eq!(CheckpointWalk.extra_cycles(0, &c), 0);
        assert_eq!(CheckpointWalk.extra_cycles(1, &c), 1);
        assert_eq!(CheckpointWalk.extra_cycles(4, &c), 1);
        assert_eq!(CheckpointWalk.extra_cycles(5, &c), 2);
        c.recover_bandwidth = 0; // guarded against division by zero
        assert_eq!(CheckpointWalk.extra_cycles(3, &c), 3);
    }

    #[test]
    fn squash_all_is_free() {
        let c = SimConfig::default();
        assert_eq!(SquashAll.extra_cycles(1000, &c), 0);
    }

    #[test]
    fn round_robin_rotates_and_skips_ineligible() {
        let mut rr = RoundRobinFetch;
        let inflight = [0usize; 4];
        assert_eq!(rr.pick(0, &[true, true, true, true], &inflight), Some(0));
        assert_eq!(rr.pick(1, &[true, true, true, true], &inflight), Some(1));
        assert_eq!(rr.pick(5, &[true, true, true, true], &inflight), Some(1));
        assert_eq!(rr.pick(1, &[true, false, false, true], &inflight), Some(3));
        assert_eq!(rr.pick(7, &[false, false, false, false], &inflight), None);
        // Single thread: always thread 0 when eligible.
        assert_eq!(rr.pick(123, &[true], &[9]), Some(0));
        assert_eq!(rr.pick(124, &[false], &[9]), None);
    }

    #[test]
    fn icount_prefers_emptiest_thread() {
        let mut ic = IcountFetch;
        assert_eq!(ic.pick(0, &[true, true, true], &[5, 2, 9]), Some(1));
        // Ties break toward the lowest thread id.
        assert_eq!(ic.pick(0, &[true, true], &[4, 4]), Some(0));
        // Ineligible threads never win, however empty.
        assert_eq!(ic.pick(0, &[false, true], &[0, 100]), Some(1));
        assert_eq!(ic.pick(0, &[false, false], &[0, 0]), None);
    }

    #[test]
    fn kinds_build_matching_impls() {
        use crate::config::{FetchPolicyKind, IssuePolicyKind, RecoveryPolicyKind};
        assert_eq!(FetchPolicyKind::RoundRobin.build().name(), "round-robin");
        assert_eq!(FetchPolicyKind::Icount.build().name(), "icount");
        assert_eq!(IssuePolicyKind::OldestFirst.build().name(), "oldest-first");
        assert_eq!(
            IssuePolicyKind::YoungestFirst.build().name(),
            "youngest-first"
        );
        assert_eq!(
            RecoveryPolicyKind::CheckpointWalk.build().name(),
            "checkpoint-walk"
        );
        assert_eq!(RecoveryPolicyKind::SquashAll.build().name(), "squash-all");
    }
}
