//! Fixed-capacity SoA re-order buffer ring.
//!
//! The ROB is the hottest in-flight structure in the pipeline: every
//! writeback, wakeup, and execute completion resolves a sequence number
//! to an entry, and the common probe (`position_of`) used to walk
//! ~200-byte [`RobEntry`] records through a `VecDeque`. This ring keeps
//! the dense entry payloads in one power-of-two array and mirrors just
//! the 8-byte sequence keys in a parallel `seqs` array, so the index
//! probe and its binary-search fallback touch only one cache line of
//! keys per eight entries instead of one line per entry.
//!
//! Capacity is fixed at construction (the config's `rob_entries`,
//! rounded up to a power of two) and never reallocates: push/pop are
//! mask-indexed ring operations, so the steady-state tick stays
//! allocation-free.
//!
//! Invariant: `seqs[i] == entries[i].seq` for every live slot. The
//! only writers are `push_back` (sets both) and the pops (retire both);
//! stage code mutates entries through `IndexMut` but never rewrites
//! `seq` after dispatch.

use crate::core_state::RobEntry;

pub(crate) struct Rob {
    /// Dense per-entry payloads, ring-indexed by `(head + pos) & mask`.
    entries: Box<[RobEntry]>,
    /// Parallel sequence-number key array for probes and searches.
    seqs: Box<[u64]>,
    head: usize,
    len: usize,
    mask: usize,
}

impl Rob {
    /// A ring holding at least `capacity` entries (rounded up to a
    /// power of two). `filler` initializes the dead slots; it is never
    /// observable through the API.
    pub(crate) fn new(capacity: usize, filler: RobEntry) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        Rob {
            entries: vec![filler; cap].into_boxed_slice(),
            seqs: vec![0; cap].into_boxed_slice(),
            head: 0,
            len: 0,
            mask: cap - 1,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn phys(&self, pos: usize) -> usize {
        (self.head + pos) & self.mask
    }

    #[inline]
    pub(crate) fn front(&self) -> Option<&RobEntry> {
        (self.len > 0).then(|| &self.entries[self.head])
    }

    #[inline]
    pub(crate) fn back(&self) -> Option<&RobEntry> {
        (self.len > 0).then(|| &self.entries[self.phys(self.len - 1)])
    }

    #[inline]
    pub(crate) fn get(&self, pos: usize) -> Option<&RobEntry> {
        (pos < self.len).then(|| &self.entries[self.phys(pos)])
    }

    pub(crate) fn push_back(&mut self, e: RobEntry) {
        assert!(self.len <= self.mask, "ROB ring overflow");
        let idx = self.phys(self.len);
        self.seqs[idx] = e.seq;
        self.entries[idx] = e;
        self.len += 1;
    }

    pub(crate) fn pop_front(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        let e = self.entries[self.head];
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(e)
    }

    pub(crate) fn pop_back(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.entries[self.phys(self.len)])
    }

    /// Ring contents as (older, younger) contiguous slices.
    pub(crate) fn as_slices(&self) -> (&[RobEntry], &[RobEntry]) {
        let cap = self.mask + 1;
        let first = self.len.min(cap - self.head);
        (
            &self.entries[self.head..self.head + first],
            &self.entries[..self.len - first],
        )
    }

    pub(crate) fn iter(
        &self,
    ) -> std::iter::Chain<std::slice::Iter<'_, RobEntry>, std::slice::Iter<'_, RobEntry>> {
        let (a, b) = self.as_slices();
        a.iter().chain(b.iter())
    }

    #[inline]
    fn seq_at(&self, pos: usize) -> u64 {
        self.seqs[self.phys(pos)]
    }

    /// Logical position of the entry carrying `seq`, touching only the
    /// key array. Sequence numbers are monotonic but not contiguous
    /// (squashes leave gaps). Gaps only ever *remove* seqs, so
    /// `seq - front_seq` is an upper bound on the position and exact
    /// whenever no squash gap sits inside the window — the
    /// overwhelmingly common case. Probe that guess first and fall
    /// back to a binary search over the keys after a squash.
    pub(crate) fn position_of(&self, seq: u64) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let front = self.seqs[self.head];
        if seq < front {
            return None;
        }
        let guess = ((seq - front) as usize).min(self.len - 1);
        if self.seq_at(guess) == seq {
            return Some(guess);
        }
        let (mut lo, mut hi) = (0, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let s = self.seq_at(mid);
            if s == seq {
                return Some(mid);
            } else if s < seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        None
    }
}

impl std::ops::Index<usize> for Rob {
    type Output = RobEntry;
    #[inline]
    fn index(&self, pos: usize) -> &RobEntry {
        debug_assert!(pos < self.len);
        &self.entries[self.phys(pos)]
    }
}

impl std::ops::IndexMut<usize> for Rob {
    #[inline]
    fn index_mut(&mut self, pos: usize) -> &mut RobEntry {
        debug_assert!(pos < self.len);
        let idx = self.phys(pos);
        &mut self.entries[idx]
    }
}

impl<'a> IntoIterator for &'a Rob {
    type Item = &'a RobEntry;
    type IntoIter =
        std::iter::Chain<std::slice::Iter<'a, RobEntry>, std::slice::Iter<'a, RobEntry>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl std::fmt::Debug for Rob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rob")
            .field("len", &self.len)
            .field("capacity", &(self.mask + 1))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_state::RobEntry;
    use regshare_core::UopKind;
    use regshare_isa::{DecodedOp, Inst, Opcode};

    fn entry(seq: u64) -> RobEntry {
        let inst = Inst::bare(Opcode::Nop);
        RobEntry {
            hart: regshare_isa::HartId::ZERO,
            seq,
            pc: seq * 4,
            d: DecodedOp::decode(&inst, 0),
            inst,
            kind: UopKind::Main,
            srcs: [None; 3],
            dst: None,
            dst2: None,
            pred: None,
            issued: false,
            done: false,
            pending_srcs: 0,
            exception: false,
            result: None,
            result2: None,
            ea: None,
            taken: None,
            next_pc: 0,
        }
    }

    fn ring(cap: usize) -> Rob {
        Rob::new(cap, entry(0))
    }

    #[test]
    fn push_pop_wraps_around() {
        let mut r = ring(4);
        for round in 0..5u64 {
            for i in 0..3 {
                r.push_back(entry(round * 10 + i));
            }
            assert_eq!(r.len(), 3);
            assert_eq!(r.front().unwrap().seq, round * 10);
            assert_eq!(r.back().unwrap().seq, round * 10 + 2);
            for i in 0..3 {
                assert_eq!(r.pop_front().unwrap().seq, round * 10 + i);
            }
            assert!(r.is_empty());
        }
    }

    #[test]
    fn position_of_probes_and_searches() {
        let mut r = ring(8);
        // Contiguous window: the guess probe hits.
        for seq in 10..15 {
            r.push_back(entry(seq));
        }
        for seq in 10..15 {
            assert_eq!(r.position_of(seq), Some((seq - 10) as usize));
        }
        assert_eq!(r.position_of(9), None);
        assert_eq!(r.position_of(15), None);
        // Gapped window (post-squash shape): binary-search fallback.
        r.pop_back();
        r.pop_back();
        r.push_back(entry(20));
        r.push_back(entry(23));
        assert_eq!(r.position_of(20), Some(3));
        assert_eq!(r.position_of(23), Some(4));
        assert_eq!(r.position_of(21), None);
        assert_eq!(r.position_of(14), None);
    }

    #[test]
    fn iter_spans_the_wrap_in_order() {
        let mut r = ring(4);
        for seq in 0..3 {
            r.push_back(entry(seq));
        }
        r.pop_front();
        r.pop_front();
        for seq in 3..6 {
            r.push_back(entry(seq));
        }
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
        let (a, b) = r.as_slices();
        assert_eq!(a.len() + b.len(), r.len());
    }

    #[test]
    fn index_mut_keeps_key_array_valid() {
        let mut r = ring(4);
        for seq in 0..4 {
            r.push_back(entry(seq));
        }
        r[2].done = true;
        assert!(r[2].done);
        assert_eq!(r.position_of(2), Some(2));
    }

    #[test]
    #[should_panic(expected = "ROB ring overflow")]
    fn overflow_panics() {
        let mut r = ring(2);
        for seq in 0..3 {
            r.push_back(entry(seq));
        }
    }

    mod schedules {
        //! Random dispatch/commit/squash schedules (the shapes the
        //! inject harness produces: stall bursts, deep squashes, empty
        //! drains) against a mirror `VecDeque` of sequence numbers. The
        //! ring must track the mirror exactly and never overflow its
        //! fixed capacity or underflow on pops.

        use super::*;
        use proptest::prelude::*;
        use std::collections::VecDeque;

        #[derive(Debug, Clone)]
        enum Op {
            /// Dispatch up to `n` new entries (capacity-gated, like
            /// rename's ROB-free check; seqs stay monotonic).
            Dispatch(u8),
            /// Retire up to `n` from the front.
            Commit(u8),
            /// Squash everything younger than the `k`-th oldest
            /// survivor (pop_back loop, like recovery).
            Squash(u8),
        }

        fn op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (1..8u8).prop_map(Op::Dispatch),
                (1..8u8).prop_map(Op::Commit),
                (0..16u8).prop_map(Op::Squash),
            ]
        }

        proptest! {
            #[test]
            fn ring_matches_mirror_under_random_schedules(
                cap in 1..24usize,
                ops in proptest::collection::vec(op(), 1..120),
            ) {
                let mut r = Rob::new(cap, entry(0));
                let mut mirror: VecDeque<u64> = VecDeque::new();
                let mut next_seq = 0u64;
                for op in ops {
                    match op {
                        Op::Dispatch(n) => {
                            for _ in 0..n {
                                if mirror.len() >= cap {
                                    break; // rename-stage capacity stall
                                }
                                r.push_back(entry(next_seq));
                                mirror.push_back(next_seq);
                                // Squash gaps: seqs are monotonic, not
                                // contiguous.
                                next_seq += 1 + next_seq.is_multiple_of(3) as u64;
                            }
                        }
                        Op::Commit(n) => {
                            for _ in 0..n {
                                prop_assert_eq!(
                                    r.pop_front().map(|e| e.seq),
                                    mirror.pop_front()
                                );
                            }
                        }
                        Op::Squash(k) => {
                            let target = mirror
                                .get(k as usize)
                                .copied()
                                .unwrap_or(0);
                            while matches!(r.back(), Some(e) if e.seq > target) {
                                prop_assert_eq!(
                                    r.pop_back().map(|e| e.seq),
                                    mirror.pop_back()
                                );
                            }
                        }
                    }
                    // Structural invariants after every step.
                    prop_assert!(r.len() <= cap.next_power_of_two());
                    prop_assert_eq!(r.len(), mirror.len());
                    prop_assert_eq!(r.front().map(|e| e.seq), mirror.front().copied());
                    prop_assert_eq!(r.back().map(|e| e.seq), mirror.back().copied());
                    let ring_seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
                    let mirror_seqs: Vec<u64> = mirror.iter().copied().collect();
                    prop_assert_eq!(&ring_seqs, &mirror_seqs);
                    // Key-array probe agrees with a linear scan, for
                    // present and absent seqs alike.
                    for probe in 0..next_seq {
                        prop_assert_eq!(
                            r.position_of(probe),
                            mirror_seqs.iter().position(|&s| s == probe)
                        );
                    }
                }
            }
        }
    }
}
