//! Readiness tracking for versioned physical register tags, with the
//! issue queue's wakeup network built in.
//!
//! The scoreboard is the single source of truth for operand readiness
//! *and* the broadcast fabric of the event-driven scheduler: a dispatched
//! consumer whose source tag is busy registers itself as a waiter on that
//! tag ([`Scoreboard::watch`]), and the producer's writeback
//! ([`Scoreboard::set_ready`]) hands every waiting sequence number back to
//! the pipeline instead of forcing a per-cycle scan of the whole issue
//! queue.

use regshare_core::TaggedReg;
use regshare_isa::RegClass;

/// Tracks which `(physical register, version)` tags have produced their
/// value — the wakeup state of the issue queue.
///
/// All tags start ready (architectural state exists at reset); a tag goes
/// busy when a producer is dispatched for it and ready again at the
/// producer's writeback.
///
/// Readiness is a flat bitset with one bit per `(register, version)`
/// slot, sized to the renaming scheme's actual version-counter width (a
/// 2-bit counter needs 4 slots per register, not a hardcoded maximum).
/// Out-of-range versions are rejected with a debug assertion.
///
/// # Examples
///
/// ```
/// use regshare_sim::Scoreboard;
/// use regshare_core::{PhysReg, TaggedReg};
/// use regshare_isa::RegClass;
///
/// let mut sb = Scoreboard::new(16, 16, 4);
/// let t = TaggedReg::new(RegClass::Int, PhysReg(3), 1);
/// assert!(sb.is_ready(t));
/// sb.set_busy(t);
/// assert!(!sb.is_ready(t));
///
/// // A consumer waits on the busy tag; the producer's writeback
/// // broadcasts its sequence number back.
/// sb.watch(t, 42);
/// let mut woken = Vec::new();
/// sb.set_ready(t, &mut woken);
/// assert!(sb.is_ready(t));
/// assert_eq!(woken, [42]);
/// ```
#[derive(Debug, Clone)]
pub struct Scoreboard {
    /// One readiness bit per slot; slot = `preg * max_versions + version`.
    ready: [Vec<u64>; 2],
    /// Waiting consumer sequence numbers per slot. A consumer appears
    /// once per busy source occurrence (twice if both sources are the
    /// same busy tag), matching its not-ready counter in the pipeline.
    waiters: [Vec<Vec<u64>>; 2],
    regs: [usize; 2],
    max_versions: usize,
}

impl Scoreboard {
    /// Creates a scoreboard for `int_regs`/`fp_regs` physical registers
    /// with `max_versions` version slots each, all ready.
    pub fn new(int_regs: usize, fp_regs: usize, max_versions: usize) -> Self {
        let max_versions = max_versions.max(1);
        let words = |regs: usize| vec![u64::MAX; (regs * max_versions).div_ceil(64)];
        Scoreboard {
            ready: [words(int_regs), words(fp_regs)],
            waiters: [
                vec![Vec::new(); int_regs * max_versions],
                vec![Vec::new(); fp_regs * max_versions],
            ],
            regs: [int_regs, fp_regs],
            max_versions,
        }
    }

    fn slot(&self, tag: TaggedReg) -> usize {
        debug_assert!(
            (tag.version as usize) < self.max_versions,
            "version {} of {:?} exceeds the configured counter width ({} versions)",
            tag.version,
            tag,
            self.max_versions,
        );
        tag.preg.0 as usize * self.max_versions + tag.version as usize
    }

    /// Marks a tag busy (producer dispatched, value not yet available).
    pub fn set_busy(&mut self, tag: TaggedReg) {
        let slot = self.slot(tag);
        debug_assert!(
            self.waiters[tag.class.index()][slot].is_empty(),
            "{tag:?} re-busied while consumers wait on it — the renamer \
             reallocated a tag with outstanding readers",
        );
        self.ready[tag.class.index()][slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Marks a tag ready (producer wrote back / producer squashed) and
    /// appends every waiting consumer's sequence number to `woken`.
    pub fn set_ready(&mut self, tag: TaggedReg, woken: &mut Vec<u64>) {
        let slot = self.slot(tag);
        self.ready[tag.class.index()][slot / 64] |= 1u64 << (slot % 64);
        woken.append(&mut self.waiters[tag.class.index()][slot]);
    }

    /// Whether the tag's value is available.
    pub fn is_ready(&self, tag: TaggedReg) -> bool {
        let slot = self.slot(tag);
        self.ready[tag.class.index()][slot / 64] & (1u64 << (slot % 64)) != 0
    }

    /// Registers consumer `seq` to be woken when `tag` becomes ready.
    /// Must only be called for busy tags.
    pub fn watch(&mut self, tag: TaggedReg, seq: u64) {
        debug_assert!(!self.is_ready(tag), "watching an already-ready tag {tag:?}");
        let slot = self.slot(tag);
        self.waiters[tag.class.index()][slot].push(seq);
    }

    /// Removes every waiter with a sequence number greater than `seq`
    /// (flush/recovery: squashed consumers must not be woken).
    pub fn drain_waiters_after(&mut self, seq: u64) {
        for class in &mut self.waiters {
            for slot in class.iter_mut() {
                if !slot.is_empty() {
                    slot.retain(|s| *s <= seq);
                }
            }
        }
    }

    /// Removes every waiter whose sequence number appears in `squashed`
    /// (sorted ascending) — the selective flush an SMT recovery needs,
    /// where only one thread's micro-ops die and other threads' younger
    /// consumers must keep their wakeup registrations.
    pub fn drain_waiters_in(&mut self, squashed: &[u64]) {
        debug_assert!(squashed.is_sorted(), "squashed seqs must be sorted");
        if squashed.is_empty() {
            return;
        }
        for class in &mut self.waiters {
            for slot in class.iter_mut() {
                if !slot.is_empty() {
                    slot.retain(|s| squashed.binary_search(s).is_err());
                }
            }
        }
    }

    /// Whether consumer `seq` is waiting on at least one tag (deadlock
    /// diagnostics).
    pub fn has_waiter(&self, seq: u64) -> bool {
        self.waiters
            .iter()
            .flatten()
            .any(|slot| slot.contains(&seq))
    }

    /// Number of physical registers tracked for a class.
    pub fn len(&self, class: RegClass) -> usize {
        self.regs[class.index()]
    }

    /// True when a class tracks no registers.
    pub fn is_empty(&self, class: RegClass) -> bool {
        self.regs[class.index()] == 0
    }

    /// Version slots per register (the configured `2^counter_bits`).
    pub fn max_versions(&self) -> usize {
        self.max_versions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_core::PhysReg;

    #[test]
    fn versions_are_independent() {
        let mut sb = Scoreboard::new(4, 4, 4);
        let v0 = TaggedReg::new(RegClass::Int, PhysReg(1), 0);
        let v1 = v0.bump();
        sb.set_busy(v1);
        assert!(sb.is_ready(v0));
        assert!(!sb.is_ready(v1));
    }

    #[test]
    fn classes_are_independent() {
        let mut sb = Scoreboard::new(4, 4, 4);
        let xi = TaggedReg::new(RegClass::Int, PhysReg(2), 0);
        let xf = TaggedReg::new(RegClass::Fp, PhysReg(2), 0);
        sb.set_busy(xi);
        assert!(!sb.is_ready(xi));
        assert!(sb.is_ready(xf));
    }

    #[test]
    fn busy_then_ready_round_trip() {
        let mut sb = Scoreboard::new(1, 1, 8);
        let t = TaggedReg::new(RegClass::Fp, PhysReg(0), 7);
        sb.set_busy(t);
        let mut woken = Vec::new();
        sb.set_ready(t, &mut woken);
        assert!(sb.is_ready(t));
        assert!(woken.is_empty());
        assert_eq!(sb.len(RegClass::Fp), 1);
        assert!(!sb.is_empty(RegClass::Fp));
        assert_eq!(sb.max_versions(), 8);
    }

    #[test]
    fn broadcast_wakes_all_waiters_in_registration_order() {
        let mut sb = Scoreboard::new(8, 0, 4);
        let t = TaggedReg::new(RegClass::Int, PhysReg(5), 2);
        sb.set_busy(t);
        sb.watch(t, 10);
        sb.watch(t, 11);
        sb.watch(t, 10); // same consumer, both sources on this tag
        assert!(sb.has_waiter(10));
        let mut woken = Vec::new();
        sb.set_ready(t, &mut woken);
        assert_eq!(woken, [10, 11, 10]);
        assert!(!sb.has_waiter(10));
        // The broadcast drains the slot: re-busying is legal again.
        sb.set_busy(t);
    }

    #[test]
    fn drain_removes_only_younger_waiters() {
        let mut sb = Scoreboard::new(8, 0, 4);
        let a = TaggedReg::new(RegClass::Int, PhysReg(1), 0);
        let b = TaggedReg::new(RegClass::Int, PhysReg(2), 1);
        sb.set_busy(a);
        sb.set_busy(b);
        sb.watch(a, 5);
        sb.watch(a, 9);
        sb.watch(b, 7);
        sb.drain_waiters_after(6);
        let mut woken = Vec::new();
        sb.set_ready(a, &mut woken);
        sb.set_ready(b, &mut woken);
        assert_eq!(woken, [5]);
    }

    #[test]
    fn selective_drain_spares_other_threads_waiters() {
        let mut sb = Scoreboard::new(8, 0, 4);
        let a = TaggedReg::new(RegClass::Int, PhysReg(1), 0);
        sb.set_busy(a);
        // Thread A's consumers (seqs 5, 9) die in a squash; thread B's
        // younger consumer (seq 7) must survive.
        sb.watch(a, 5);
        sb.watch(a, 7);
        sb.watch(a, 9);
        sb.drain_waiters_in(&[5, 9]);
        let mut woken = Vec::new();
        sb.set_ready(a, &mut woken);
        assert_eq!(woken, [7]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds the configured counter width")]
    fn out_of_range_version_is_rejected() {
        let sb = Scoreboard::new(4, 4, 4);
        sb.is_ready(TaggedReg::new(RegClass::Int, PhysReg(0), 4));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "re-busied while consumers wait")]
    fn rebusying_a_watched_tag_is_rejected() {
        let mut sb = Scoreboard::new(4, 4, 4);
        let t = TaggedReg::new(RegClass::Int, PhysReg(1), 1);
        sb.set_busy(t);
        sb.watch(t, 3);
        sb.set_busy(t);
    }
}
