//! Readiness tracking for versioned physical register tags.

use regshare_core::TaggedReg;
use regshare_isa::RegClass;

const MAX_VERSIONS: usize = 8;

/// Tracks which `(physical register, version)` tags have produced their
/// value — the wakeup state of the issue queue.
///
/// All tags start ready (architectural state exists at reset); a tag goes
/// busy when a producer is dispatched for it and ready again at the
/// producer's writeback.
///
/// # Examples
///
/// ```
/// use regshare_sim::Scoreboard;
/// use regshare_core::{PhysReg, TaggedReg};
/// use regshare_isa::RegClass;
///
/// let mut sb = Scoreboard::new(16, 16);
/// let t = TaggedReg::new(RegClass::Int, PhysReg(3), 1);
/// assert!(sb.is_ready(t));
/// sb.set_busy(t);
/// assert!(!sb.is_ready(t));
/// sb.set_ready(t);
/// assert!(sb.is_ready(t));
/// ```
#[derive(Debug, Clone)]
pub struct Scoreboard {
    ready: [Vec<[bool; MAX_VERSIONS]>; 2],
}

impl Scoreboard {
    /// Creates a scoreboard for `int_regs`/`fp_regs` physical registers,
    /// all versions ready.
    pub fn new(int_regs: usize, fp_regs: usize) -> Self {
        Scoreboard {
            ready: [
                vec![[true; MAX_VERSIONS]; int_regs],
                vec![[true; MAX_VERSIONS]; fp_regs],
            ],
        }
    }

    fn slot(&mut self, tag: TaggedReg) -> &mut bool {
        &mut self.ready[tag.class.index()][tag.preg.0 as usize][tag.version as usize]
    }

    /// Marks a tag busy (producer dispatched, value not yet available).
    pub fn set_busy(&mut self, tag: TaggedReg) {
        *self.slot(tag) = false;
    }

    /// Marks a tag ready (producer wrote back / producer squashed).
    pub fn set_ready(&mut self, tag: TaggedReg) {
        *self.slot(tag) = true;
    }

    /// Whether the tag's value is available.
    pub fn is_ready(&self, tag: TaggedReg) -> bool {
        self.ready[tag.class.index()][tag.preg.0 as usize][tag.version as usize]
    }

    /// Number of physical registers tracked for a class.
    pub fn len(&self, class: RegClass) -> usize {
        self.ready[class.index()].len()
    }

    /// True when a class tracks no registers.
    pub fn is_empty(&self, class: RegClass) -> bool {
        self.ready[class.index()].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_core::PhysReg;

    #[test]
    fn versions_are_independent() {
        let mut sb = Scoreboard::new(4, 4);
        let v0 = TaggedReg::new(RegClass::Int, PhysReg(1), 0);
        let v1 = v0.bump();
        sb.set_busy(v1);
        assert!(sb.is_ready(v0));
        assert!(!sb.is_ready(v1));
    }

    #[test]
    fn classes_are_independent() {
        let mut sb = Scoreboard::new(4, 4);
        let xi = TaggedReg::new(RegClass::Int, PhysReg(2), 0);
        let xf = TaggedReg::new(RegClass::Fp, PhysReg(2), 0);
        sb.set_busy(xi);
        assert!(!sb.is_ready(xi));
        assert!(sb.is_ready(xf));
    }

    #[test]
    fn busy_then_ready_round_trip() {
        let mut sb = Scoreboard::new(1, 1);
        let t = TaggedReg::new(RegClass::Fp, PhysReg(0), 7);
        sb.set_busy(t);
        sb.set_ready(t);
        assert!(sb.is_ready(t));
        assert_eq!(sb.len(RegClass::Fp), 1);
        assert!(!sb.is_empty(RegClass::Fp));
    }
}
