//! Shared core state, per-thread contexts, and the typed stage-boundary
//! latches.
//!
//! [`CoreState`] owns every structure the hardware threads share — issue
//! queue, scoreboard, register files, renamer, memory timing, functional
//! units and statistics — plus one [`ThreadCtx`] per resident thread for
//! the private state (program, architectural memory, ROB partition,
//! load/store-queue partition, fetch PC). [`StageIo`] owns the two
//! persistent inter-stage queues ([`FetchedBundle`], [`DecodedBundle`]);
//! the pipeline driver keeps one `StageIo` per thread. Stage modules
//! under [`crate::stages`] mutate this state through their `tick`
//! functions; the helpers here are the pieces several stages share (ROB
//! lookup, wakeup broadcast, snapshots, invariant audits).

use crate::bpred::{BranchPredictor, Prediction};
use crate::errors::{HeadSnapshot, PipelineSnapshot, SimError, TraceEvent, TraceStage};
use crate::inject::InjectState;
use crate::profile::StageProfile;
use crate::rob::Rob;
use crate::{CompletionWheel, FuPool, LoadStoreQueue, LsqError, Scoreboard, SimConfig};
use regshare_core::{RegFile, Renamer, TaggedReg, UopKind, UopVec};
use regshare_isa::{DecodedOp, HartId, Inst, Machine, Memory, Program, RegClass};
use regshare_mem::MemoryHierarchy;
use regshare_stats::Sampler;
use std::collections::VecDeque;

/// Tags an instruction or data address with a thread id so per-thread
/// address spaces stay disjoint inside the shared branch predictor,
/// caches and TLB. Thread 0 is the identity mapping, keeping
/// single-thread runs byte-identical to the pre-SMT pipeline; other
/// threads shift their id far above any program-generated address.
pub(crate) fn tag_addr(tid: usize, addr: u64) -> u64 {
    addr | ((tid as u64) << 40)
}

/// Ordered set of sequence numbers on a flat sorted vector. The issue
/// queue's ready list and the unresolved-branch set hold at most a few
/// dozen entries, where binary search plus a short `memmove` beats a
/// BTree on every operation and steady state never allocates.
#[derive(Debug, Clone, Default)]
pub(crate) struct SeqSet(Vec<u64>);

impl SeqSet {
    pub(crate) fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub(crate) fn as_slice(&self) -> &[u64] {
        &self.0
    }

    pub(crate) fn first(&self) -> Option<u64> {
        self.0.first().copied()
    }

    pub(crate) fn contains(&self, seq: u64) -> bool {
        self.0.binary_search(&seq).is_ok()
    }

    pub(crate) fn insert(&mut self, seq: u64) {
        match self.0.last() {
            Some(&last) if last >= seq => {
                if let Err(i) = self.0.binary_search(&seq) {
                    self.0.insert(i, seq);
                }
            }
            // Dispatch inserts in program order: appending is the norm.
            _ => self.0.push(seq),
        }
    }

    pub(crate) fn remove(&mut self, seq: u64) -> bool {
        match self.0.binary_search(&seq) {
            Ok(i) => {
                self.0.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Drops every entry greater than `seq` (squash).
    pub(crate) fn retain_le(&mut self, seq: u64) {
        let keep = self.0.partition_point(|&s| s <= seq);
        self.0.truncate(keep);
    }
}

/// A fetched instruction travelling the front end with its prediction.
#[derive(Debug, Clone)]
pub(crate) struct Fetched {
    pub(crate) pc: u64,
    pub(crate) inst: Inst,
    /// Predecoded static facts for `inst`, copied out of the program's
    /// [`regshare_isa::DecodedImage`] at fetch so later stages test
    /// packed flags instead of re-deriving opcode predicates.
    pub(crate) d: DecodedOp,
    pub(crate) pred: Option<Prediction>,
}

/// The fetch → decode latch: predicted-path instructions waiting to be
/// decoded, capacity-bounded by `SimConfig::fetch_queue`.
#[derive(Debug, Default)]
pub(crate) struct FetchedBundle {
    q: VecDeque<Fetched>,
}

impl FetchedBundle {
    pub(crate) fn len(&self) -> usize {
        self.q.len()
    }

    pub(crate) fn front(&self) -> Option<&Fetched> {
        self.q.front()
    }

    pub(crate) fn push_back(&mut self, f: Fetched) {
        self.q.push_back(f);
    }

    pub(crate) fn pop_front(&mut self) -> Option<Fetched> {
        self.q.pop_front()
    }

    pub(crate) fn clear(&mut self) {
        self.q.clear();
    }
}

/// The decode → rename latch: decoded instructions waiting for rename
/// bandwidth and free structures.
#[derive(Debug, Default)]
pub(crate) struct DecodedBundle {
    q: VecDeque<Fetched>,
}

impl DecodedBundle {
    pub(crate) fn len(&self) -> usize {
        self.q.len()
    }

    pub(crate) fn front(&self) -> Option<&Fetched> {
        self.q.front()
    }

    pub(crate) fn push_back(&mut self, f: Fetched) {
        self.q.push_back(f);
    }

    pub(crate) fn pop_front(&mut self) -> Option<Fetched> {
        self.q.pop_front()
    }

    pub(crate) fn clear(&mut self) {
        self.q.clear();
    }
}

/// The rename → dispatch hand-off: one renamed instruction with its
/// micro-op expansion. Transient — dispatch consumes it within the same
/// tick, because rename's capacity checks need dispatch's live ROB/IQ
/// occupancy before renaming the next instruction.
#[derive(Debug)]
pub(crate) struct RenamedBundle {
    pub(crate) uops: UopVec,
    pub(crate) pc: u64,
    pub(crate) inst: Inst,
    pub(crate) d: DecodedOp,
    pub(crate) pred: Option<Prediction>,
}

/// The persistent stage-boundary latches, owned by the pipeline driver
/// and passed to each stage's `tick` alongside [`CoreState`].
#[derive(Debug, Default)]
pub(crate) struct StageIo {
    /// Fetch → decode.
    pub(crate) fetched: FetchedBundle,
    /// Decode → rename.
    pub(crate) decoded: DecodedBundle,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct RobEntry {
    /// The hardware thread this micro-op belongs to; always matches the
    /// ROB partition holding the entry (the audit cross-checks it).
    pub(crate) hart: HartId,
    pub(crate) seq: u64,
    pub(crate) pc: u64,
    pub(crate) inst: Inst,
    /// Predecoded flags for `inst` — the hot-path predicates
    /// (load/store/branch/halt, FU class) without touching the opcode.
    pub(crate) d: DecodedOp,
    pub(crate) kind: UopKind,
    pub(crate) srcs: [Option<TaggedReg>; 3],
    pub(crate) dst: Option<TaggedReg>,
    pub(crate) dst2: Option<TaggedReg>,
    pub(crate) pred: Option<Prediction>,
    pub(crate) issued: bool,
    pub(crate) done: bool,
    /// Source tags still busy — the entry's not-ready counter in the
    /// wakeup network. The entry sits in the ready queue iff this is 0
    /// and it has not issued.
    pub(crate) pending_srcs: u8,
    pub(crate) exception: bool,
    pub(crate) result: Option<u64>,
    pub(crate) result2: Option<u64>,
    pub(crate) ea: Option<u64>,
    pub(crate) taken: Option<bool>,
    pub(crate) next_pc: u64,
}

impl RobEntry {
    /// Dead-slot initializer for the fixed ROB ring; never observable
    /// through the ring API.
    pub(crate) fn filler() -> Self {
        let inst = Inst::bare(regshare_isa::Opcode::Nop);
        RobEntry {
            hart: HartId::ZERO,
            seq: 0,
            pc: 0,
            d: DecodedOp::decode(&inst, 0),
            inst,
            kind: UopKind::Main,
            srcs: [None; 3],
            dst: None,
            dst2: None,
            pred: None,
            issued: false,
            done: false,
            pending_srcs: 0,
            exception: false,
            result: None,
            result2: None,
            ea: None,
            taken: None,
            next_pc: 0,
        }
    }
}

/// One hardware thread's private state: its program, architectural
/// memory image, lockstep oracle, ROB and load/store-queue partitions,
/// unresolved-branch set and fetch cursor. Everything not in here is
/// shared between the threads through [`CoreState`].
pub(crate) struct ThreadCtx {
    pub(crate) hart: HartId,
    pub(crate) program: Program,
    pub(crate) memory: Memory,
    pub(crate) oracle: Option<Machine>,
    /// This thread's ROB partition (`rob_entries / threads` logical
    /// capacity, enforced by rename's per-thread occupancy check).
    pub(crate) rob: Rob,
    /// This thread's load/store-queue partition.
    pub(crate) lsq: LoadStoreQueue,
    /// Sequence numbers of this thread's in-flight micro-ops carrying an
    /// unresolved branch opcode, in program order. The oldest entry is
    /// the speculation boundary the renamer is advanced to each cycle —
    /// maintained incrementally instead of scanning the ROB per cycle.
    pub(crate) unresolved_branches: SeqSet,
    pub(crate) fetch_pc: Option<u64>,
    pub(crate) fetch_stall_until: u64,
    /// PC whose i-cache fill this thread is waiting on. When the stall
    /// expires, fetch consumes the arrived line from the fill buffer
    /// even if a co-resident thread has evicted it again — without this,
    /// threads sharing an associativity-limited set livelock, each
    /// eviction re-stalling the victim forever.
    pub(crate) pending_fill: Option<u64>,
    pub(crate) halted: bool,
    pub(crate) committed_instructions: u64,
}

/// Everything the stages share: machine structures, speculation state,
/// statistics, plus one [`ThreadCtx`] per resident hardware thread. The
/// per-stage `tick` functions receive `&mut CoreState`; the slim
/// `Pipeline` driver owns it.
pub(crate) struct CoreState {
    pub(crate) config: SimConfig,
    pub(crate) threads: Vec<ThreadCtx>,
    pub(crate) renamer: Box<dyn Renamer>,
    pub(crate) rf: [RegFile; 2],
    pub(crate) scoreboard: Scoreboard,
    pub(crate) mem_timing: MemoryHierarchy,
    pub(crate) bpred: BranchPredictor,
    pub(crate) fus: FuPool,
    /// Operand-ready, unissued entries in sequence order — the select
    /// stage's input. Entries with busy sources are not here; they wait
    /// in the scoreboard's per-tag waiter lists until woken.
    pub(crate) ready_q: SeqSet,
    /// Occupied issue-queue entries (ready + waiting) across all
    /// threads, for dispatch capacity accounting — the issue queue is a
    /// shared structure.
    pub(crate) iq_len: usize,
    /// Scratch buffer reused across cycles by the wakeup broadcast.
    pub(crate) wake_scratch: Vec<u64>,
    /// Scratch buffer reused by SMT recoveries for the squashed
    /// sequence numbers handed to the scoreboard's selective drain.
    pub(crate) squash_scratch: Vec<u64>,
    pub(crate) next_seq: u64,
    pub(crate) cycle: u64,
    pub(crate) completions: CompletionWheel,
    /// Armed fault-injection schedule, if any (delivered to thread 0).
    pub(crate) inject: Option<InjectState>,
    /// A recovery happened this cycle: run the full architectural diff
    /// against the oracle at the end of the recovery before resuming.
    pub(crate) pending_verify: bool,
    /// Invariant audits performed ([`SimConfig::audit_interval`]).
    pub(crate) audits: u64,
    /// Every resident thread has retired its halt.
    pub(crate) halted: bool,
    /// Committed instructions summed over all threads (the per-thread
    /// counts live in each [`ThreadCtx`]).
    pub(crate) committed_instructions: u64,
    pub(crate) committed_uops: u64,
    pub(crate) mispredicts: u64,
    pub(crate) exceptions: u64,
    pub(crate) shadow_recovers: u64,
    pub(crate) expensive_repairs: u64,
    pub(crate) rename_stall_cycles: u64,
    pub(crate) last_commit_cycle: u64,
    pub(crate) int_occupancy: Vec<Sampler>,
    pub(crate) fp_occupancy: Vec<Sampler>,
    /// Reused buffer for the periodic occupancy readout.
    pub(crate) occupancy_scratch: Vec<usize>,
    pub(crate) trace: Vec<TraceEvent>,
    /// Host wall-clock time accumulated across `run` calls.
    pub(crate) wall_seconds: f64,
    /// Per-stage cost attribution: deterministic work counters (always
    /// on) plus host-time laps when [`SimConfig::profile`] is set.
    pub(crate) profile: StageProfile,
}

impl CoreState {
    pub(crate) fn trace_event(&mut self, seq: u64, pc: u64, stage: TraceStage) {
        if self.config.trace && self.trace.len() < 100_000 {
            self.trace.push(TraceEvent {
                cycle: self.cycle,
                seq,
                pc,
                stage,
            });
        }
    }

    /// Locates a live micro-op across the per-thread ROB partitions:
    /// `(thread id, position in that thread's ROB)`. The thread count is
    /// at most [`regshare_isa::MAX_HARTS`], so the scan is a handful of
    /// O(1) probes.
    pub(crate) fn rob_find(&self, seq: u64) -> Option<(usize, usize)> {
        self.threads
            .iter()
            .enumerate()
            .find_map(|(tid, ctx)| ctx.rob.position_of(seq).map(|idx| (tid, idx)))
    }

    pub(crate) fn rob_entry(&self, seq: u64) -> Option<&RobEntry> {
        let (tid, idx) = self.rob_find(seq)?;
        self.threads[tid].rob.get(idx)
    }

    /// Logical ROB capacity of each thread's partition.
    pub(crate) fn rob_partition(&self) -> usize {
        self.config.rob_entries / self.threads.len()
    }

    /// Whether any thread still holds in-flight micro-ops.
    pub(crate) fn rob_nonempty(&self) -> bool {
        self.threads.iter().any(|ctx| !ctx.rob.is_empty())
    }

    /// The oldest in-flight micro-op across every thread, if any.
    pub(crate) fn oldest_inflight(&self) -> Option<&RobEntry> {
        self.threads
            .iter()
            .filter_map(|ctx| ctx.rob.front())
            .min_by_key(|e| e.seq)
    }

    pub(crate) fn read_operands(&self, srcs: &[Option<TaggedReg>; 3]) -> [u64; 3] {
        let mut ops = [0u64; 3];
        for (slot, tag) in ops.iter_mut().zip(srcs.iter()) {
            if let Some(t) = tag {
                *slot = self.rf[t.class.index()].read_version(t.preg, t.version);
            }
        }
        ops
    }

    /// Captures the current pipeline state for a diagnostic dump. Queue
    /// depths are summed over the threads; the fetch cursor shown is
    /// thread 0's and the head is the oldest in-flight micro-op of any
    /// thread (both trivially exact with one thread).
    pub(crate) fn snapshot(&self, lat: &[StageIo]) -> PipelineSnapshot {
        let free = |class: RegClass| {
            self.renamer
                .banks(class)
                .total()
                .saturating_sub(self.renamer.allocated_total(class))
        };
        let head = self.oldest_inflight().map(|e| HeadSnapshot {
            seq: e.seq,
            pc: e.pc,
            inst: e.inst.to_string(),
            kind: format!("{:?}", e.kind),
            issued: e.issued,
            done: e.done,
            pending_srcs: e.pending_srcs,
            in_ready_q: self.ready_q.contains(e.seq),
            has_waiter: self.scoreboard.has_waiter(e.seq),
            srcs_ready: e
                .srcs
                .iter()
                .flatten()
                .map(|t| self.scoreboard.is_ready(*t))
                .collect(),
            exception: e.exception,
        });
        PipelineSnapshot {
            cycle: self.cycle,
            last_commit_cycle: self.last_commit_cycle,
            fetch_pc: self.threads[0].fetch_pc,
            fetch_stall_until: self.threads[0].fetch_stall_until,
            fetch_queue: lat.iter().map(|io| io.fetched.len()).sum(),
            decode_queue: lat.iter().map(|io| io.decoded.len()).sum(),
            rob: self.threads.iter().map(|ctx| ctx.rob.len()).sum(),
            iq: self.iq_len,
            ready: self.ready_q.as_slice().len(),
            unresolved_branches: self
                .threads
                .iter()
                .map(|ctx| ctx.unresolved_branches.as_slice().len())
                .sum(),
            lsq_loads: self.threads.iter().map(|ctx| ctx.lsq.loads_len()).sum(),
            lsq_stores: self.threads.iter().map(|ctx| ctx.lsq.stores_len()).sum(),
            free_int: free(RegClass::Int),
            free_fp: free(RegClass::Fp),
            head,
        }
    }

    pub(crate) fn corrupt_err(&self, lat: &[StageIo], what: impl Into<String>) -> SimError {
        SimError::Invariant {
            cycle: self.cycle,
            what: what.into(),
            snapshot: Box::new(self.snapshot(lat)),
        }
    }

    pub(crate) fn lsq_err(&self, lat: &[StageIo], error: LsqError) -> SimError {
        SimError::Lsq {
            cycle: self.cycle,
            error,
            snapshot: Box::new(self.snapshot(lat)),
        }
    }

    /// One-shot consumption of an armed forced load fault.
    pub(crate) fn consume_armed_load_fault(&mut self) -> bool {
        match &mut self.inject {
            Some(inj) if inj.armed_load_fault => {
                inj.armed_load_fault = false;
                inj.stats.load_faults += 1;
                true
            }
            _ => false,
        }
    }

    /// One-shot consumption of an armed forced store fault.
    pub(crate) fn consume_armed_store_fault(&mut self) -> bool {
        match &mut self.inject {
            Some(inj) if inj.armed_store_fault => {
                inj.armed_store_fault = false;
                inj.stats.store_faults += 1;
                true
            }
            _ => false,
        }
    }

    /// If a recovery completed this cycle, diff the full architectural
    /// state (every register through the retirement map, plus memory)
    /// against the lockstep oracle. No-op without an oracle.
    pub(crate) fn check_recovery_boundary(&mut self, lat: &[StageIo]) -> Result<(), SimError> {
        if !self.pending_verify {
            return Ok(());
        }
        self.pending_verify = false;
        self.verify_arch_state(lat)
    }

    /// Diffs every thread's full architectural state (each register
    /// through that thread's retirement map, plus its memory image)
    /// against its lockstep oracle. Threads without an oracle are
    /// skipped.
    pub(crate) fn verify_arch_state(&self, lat: &[StageIo]) -> Result<(), SimError> {
        for ctx in &self.threads {
            let Some(oracle) = &ctx.oracle else {
                continue;
            };
            if let Some(map) = self.renamer.arch_map_on(ctx.hart) {
                for class in [RegClass::Int, RegClass::Fp] {
                    for (r, tag) in map.iter_class(class) {
                        if r.is_zero() {
                            continue;
                        }
                        let got = self.rf[tag.class.index()].read_version(tag.preg, tag.version);
                        let want = oracle.reg_bits(r);
                        if got != want {
                            return Err(SimError::OracleMismatch {
                                cycle: self.cycle,
                                detail: format!(
                                    "architectural state diff ({}): {r} (mapped to {tag}) \
                                     is {got:#x}, oracle has {want:#x}",
                                    ctx.hart
                                ),
                                snapshot: Box::new(self.snapshot(lat)),
                            });
                        }
                    }
                }
            }
            if let Some((addr, got, want)) = ctx.memory.first_difference(oracle.memory()) {
                return Err(SimError::OracleMismatch {
                    cycle: self.cycle,
                    detail: format!(
                        "memory diff ({}): byte {addr:#x} is {got:#x}, oracle has {want:#x}",
                        ctx.hart
                    ),
                    snapshot: Box::new(self.snapshot(lat)),
                });
            }
        }
        Ok(())
    }

    // ---- invariant audits ----

    /// Every [`SimConfig::audit_interval`] cycles, cross-check the
    /// renamer's bookkeeping (free list / PRT / map tables) and the
    /// pipeline's IQ/ROB/wakeup state against their invariants.
    pub(crate) fn audit_if_due(&mut self, lat: &[StageIo]) -> Result<(), SimError> {
        let n = self.config.audit_interval;
        if n == 0 || self.cycle == 0 || !self.cycle.is_multiple_of(n) {
            return Ok(());
        }
        self.audits += 1;
        if let Err(what) = self.renamer.audit() {
            return Err(self.corrupt_err(lat, format!("renamer audit: {what}")));
        }
        self.audit_occupancy(lat)?;
        self.audit_pipeline(lat)
    }

    /// The two occupancy readouts must agree: the per-bank in-use counts
    /// (the Fig. 9 signal) have to sum to the scheme's total allocated
    /// register count.
    fn audit_occupancy(&self, lat: &[StageIo]) -> Result<(), SimError> {
        for class in [RegClass::Int, RegClass::Fp] {
            let per_bank: usize = self.renamer.in_use_per_bank(class).into_iter().sum();
            let total = self.renamer.allocated_total(class);
            if per_bank != total {
                return Err(self.corrupt_err(
                    lat,
                    format!(
                        "{class:?} per-bank occupancy sums to {per_bank} \
                         but {total} registers are allocated"
                    ),
                ));
            }
        }
        Ok(())
    }

    fn audit_pipeline(&self, lat: &[StageIo]) -> Result<(), SimError> {
        let max_version = self.renamer.max_version();
        let rob_partition = self.rob_partition();
        let mut unissued = 0usize;
        for (tid, ctx) in self.threads.iter().enumerate() {
            if ctx.rob.len() > rob_partition {
                return Err(self.corrupt_err(
                    lat,
                    format!(
                        "thread {tid} holds {} ROB entries but its partition is {rob_partition}",
                        ctx.rob.len()
                    ),
                ));
            }
            let mut prev_seq = None;
            for e in &ctx.rob {
                if e.hart.index() != tid {
                    return Err(self.corrupt_err(
                        lat,
                        format!(
                            "seq {} tagged {} sits in thread {tid}'s ROB partition",
                            e.seq, e.hart
                        ),
                    ));
                }
                if let Some(p) = prev_seq {
                    if e.seq <= p {
                        return Err(self.corrupt_err(
                            lat,
                            format!("ROB order (thread {tid}): seq {} follows seq {p}", e.seq),
                        ));
                    }
                }
                prev_seq = Some(e.seq);
                unissued += self.audit_rob_entry(lat, e, max_version)?;
            }
        }
        if unissued != self.iq_len {
            return Err(self.corrupt_err(
                lat,
                format!(
                    "issue-queue occupancy {} but {unissued} unissued ROB entries",
                    self.iq_len
                ),
            ));
        }
        for &seq in self.ready_q.as_slice() {
            match self.rob_entry(seq) {
                None => {
                    return Err(self.corrupt_err(
                        lat,
                        format!("ready queue holds seq {seq} which is not in the ROB"),
                    ));
                }
                Some(e) if e.issued => {
                    return Err(
                        self.corrupt_err(lat, format!("ready queue holds issued seq {seq}"))
                    );
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Checks one ROB entry's wakeup/readiness invariants; returns 1 if
    /// the entry occupies an issue-queue slot (unissued), 0 otherwise.
    fn audit_rob_entry(
        &self,
        lat: &[StageIo],
        e: &RobEntry,
        max_version: u8,
    ) -> Result<usize, SimError> {
        let mut unissued = 0usize;
        {
            let busy = e
                .srcs
                .iter()
                .flatten()
                .filter(|t| !self.scoreboard.is_ready(**t))
                .count() as u8;
            if !e.issued {
                unissued += 1;
                if e.pending_srcs != busy {
                    return Err(self.corrupt_err(
                        lat,
                        format!(
                            "seq {}: pending_srcs {} but {busy} busy source operand(s)",
                            e.seq, e.pending_srcs
                        ),
                    ));
                }
                if (e.pending_srcs == 0) != self.ready_q.contains(e.seq) {
                    return Err(self.corrupt_err(
                        lat,
                        format!(
                            "seq {}: ready-queue membership ({}) disagrees with pending_srcs {}",
                            e.seq,
                            self.ready_q.contains(e.seq),
                            e.pending_srcs
                        ),
                    ));
                }
            } else if e.pending_srcs != 0 {
                return Err(self.corrupt_err(
                    lat,
                    format!("seq {} issued with pending_srcs {}", e.seq, e.pending_srcs),
                ));
            }
            if e.done {
                for tag in [e.dst, e.dst2].into_iter().flatten() {
                    if !self.scoreboard.is_ready(tag) {
                        return Err(self.corrupt_err(
                            lat,
                            format!("seq {} done but destination {tag} is still busy", e.seq),
                        ));
                    }
                }
            }
            for tag in e.srcs.iter().chain([e.dst, e.dst2].iter()).flatten() {
                if tag.version > max_version {
                    return Err(self.corrupt_err(
                        lat,
                        format!(
                            "seq {}: tag {tag} version exceeds the counter maximum {max_version}",
                            e.seq
                        ),
                    ));
                }
                let cells = self.renamer.banks(tag.class).shadow_cells_of(tag.preg);
                if tag.version > 0 && tag.version > cells {
                    return Err(self.corrupt_err(
                        lat,
                        format!(
                            "seq {}: tag {tag} version has no backing shadow cell \
                             ({cells} available)",
                            e.seq
                        ),
                    ));
                }
            }
        }
        Ok(unissued)
    }

    /// Sets `tag` ready and delivers the wakeup to every consumer parked
    /// on it: each broadcast decrements the consumer's not-ready counter,
    /// and a counter reaching zero moves the entry to the ready queue.
    pub(crate) fn broadcast_ready(
        &mut self,
        lat: &[StageIo],
        tag: TaggedReg,
    ) -> Result<(), SimError> {
        let mut woken = std::mem::take(&mut self.wake_scratch);
        self.scoreboard.set_ready(tag, &mut woken);
        for i in 0..woken.len() {
            let seq = woken[i];
            // Waiters are drained on squash, so a woken seq must be a
            // live ROB entry still counting down busy sources.
            let mut problem = None;
            match self.rob_find(seq) {
                Some((tid, idx)) => {
                    let e = &mut self.threads[tid].rob[idx];
                    if e.pending_srcs == 0 {
                        problem = Some("woken with no pending source operands");
                    } else {
                        e.pending_srcs -= 1;
                        if e.pending_srcs == 0 {
                            self.ready_q.insert(seq);
                        }
                    }
                }
                None => problem = Some("a scoreboard waiter that is not in the ROB"),
            }
            if let Some(what) = problem {
                woken.clear();
                self.wake_scratch = woken;
                return Err(self.corrupt_err(lat, format!("wakeup on {tag}: seq {seq} is {what}")));
            }
        }
        woken.clear();
        self.wake_scratch = woken;
        Ok(())
    }

    /// Books the issue of `seq` with the renamer and the completion
    /// wheel; the result writes back `latency` cycles from now.
    pub(crate) fn schedule(&mut self, seq: u64, latency: u32) {
        self.renamer.on_operands_read(seq);
        if self.config.trace {
            if let Some(pc) = self.rob_entry(seq).map(|e| e.pc) {
                self.trace_event(seq, pc, TraceStage::Issue);
            }
        }
        self.completions
            .schedule(self.cycle + latency.max(1) as u64, seq);
    }

    pub(crate) fn sample_occupancy(&mut self) {
        let interval = self.config.occupancy_sample_interval;
        if interval == 0 || !self.cycle.is_multiple_of(interval) {
            return;
        }
        for (class, samplers) in [
            (RegClass::Int, &mut self.int_occupancy),
            (RegClass::Fp, &mut self.fp_occupancy),
        ] {
            self.renamer
                .in_use_per_bank_into(class, &mut self.occupancy_scratch);
            for (k, &used) in self.occupancy_scratch.iter().enumerate() {
                samplers[k].record(used as u64);
            }
        }
    }
}
