//! Post-increment (writeback) addressing through the full pipeline: the
//! base register is a second destination, and under the proposed scheme
//! the pointer chain shares a single physical register.

use regshare_core::{BaselineRenamer, RenamerConfig, ReuseRenamer};
use regshare_isa::{reg, Asm, DataBuilder, Machine};
use regshare_sim::{Pipeline, SimConfig};

fn checked() -> SimConfig {
    SimConfig::test()
}

#[test]
fn post_increment_loads_match_oracle() {
    let mut d = DataBuilder::new(0x1000);
    let xs = d.u64_array(&[5, 10, 15, 20, 25, 30, 35, 40]);
    let out = d.zeros(8);
    let mut a = Asm::with_data(d);
    a.li(reg::x(1), xs as i64);
    a.li(reg::x(2), 8);
    a.li(reg::x(3), 0);
    let top = a.label();
    a.bind(top);
    a.ld_post(reg::x(4), reg::x(1), 8); // x4 = *x1; x1 += 8
    a.add(reg::x(3), reg::x(3), reg::x(4));
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.li(reg::x(5), out as i64);
    a.st(reg::x(3), reg::x(5), 0);
    a.halt();
    let p = a.assemble();

    let mut m = Machine::new(p.clone());
    m.run(1_000).unwrap();
    assert_eq!(m.memory().read_u64(out), 180);

    for renamer in [
        Box::new(BaselineRenamer::new(RenamerConfig::baseline(64)))
            as Box<dyn regshare_core::Renamer>,
        Box::new(ReuseRenamer::new(RenamerConfig::paper(64))),
    ] {
        let mut sim = Pipeline::new(p.clone(), renamer, checked());
        let report = sim.run().expect("oracle-checked post-increment run");
        assert!(report.halted);
        assert_eq!(sim.memory().read_u64(out), 180);
    }
}

#[test]
fn post_increment_stores_match_oracle() {
    let mut d = DataBuilder::new(0x2000);
    let dst = d.zeros(64);
    let mut a = Asm::with_data(d);
    a.li(reg::x(1), dst as i64);
    a.li(reg::x(2), 8);
    a.li(reg::x(3), 7);
    let top = a.label();
    a.bind(top);
    a.st_post(reg::x(3), reg::x(1), 8); // *x1 = x3; x1 += 8
    a.addi(reg::x(3), reg::x(3), 7);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.halt();
    let p = a.assemble();

    let mut sim = Pipeline::new(
        p,
        Box::new(ReuseRenamer::new(RenamerConfig::paper(64))),
        checked(),
    );
    let report = sim.run().expect("post-increment store run");
    assert!(report.halted);
    for i in 0..8u64 {
        assert_eq!(sim.memory().read_u64(dst + i * 8), 7 * (i + 1));
    }
}

#[test]
fn pointer_chain_reuses_one_register() {
    // A streaming fp loop written ARM-style: with post-increment, the
    // pointer's old value has exactly one consumer (the load itself), so
    // the pointer chain shares a physical register.
    let mut d = DataBuilder::new(0x3000);
    let xs: Vec<f64> = (0..256).map(|i| i as f64).collect();
    let xa = d.f64_array(&xs);
    let out = d.zeros(8);
    let mut a = Asm::with_data(d);
    a.li(reg::x(1), xa as i64);
    a.li(reg::x(2), 256);
    a.fli(reg::f(0), 0.0);
    let top = a.label();
    a.bind(top);
    a.fld_post(reg::f(1), reg::x(1), 8);
    a.fadd(reg::f(0), reg::f(0), reg::f(1));
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.li(reg::x(3), out as i64);
    a.fst(reg::f(0), reg::x(3), 0);
    a.halt();
    let p = a.assemble();

    let mut sim = Pipeline::new(
        p,
        Box::new(ReuseRenamer::new(RenamerConfig::paper(64))),
        checked(),
    );
    let report = sim.run().expect("pointer chain run");
    assert!(report.halted);
    let expected: f64 = (0..256).map(|i| i as f64).sum();
    assert_eq!(f64::from_bits(sim.memory().read_u64(out)), expected);
    // The pointer chain must actually reuse (first iterations train the
    // predictor; the rest chain).
    assert!(
        report.rename.safe_reuses > 100,
        "pointer writeback should reuse heavily, got {}",
        report.rename.safe_reuses
    );
}

#[test]
fn post_increment_with_page_fault_recovers() {
    let mut d = DataBuilder::new(0x4000);
    let xs = d.u64_array(&(0..1024).collect::<Vec<u64>>());
    let out = d.zeros(8);
    let mut a = Asm::with_data(d);
    a.li(reg::x(1), xs as i64);
    a.li(reg::x(2), 1024);
    a.li(reg::x(3), 0);
    let top = a.label();
    a.bind(top);
    a.ld_post(reg::x(4), reg::x(1), 8);
    a.add(reg::x(3), reg::x(3), reg::x(4));
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.li(reg::x(5), out as i64);
    a.st(reg::x(3), reg::x(5), 0);
    a.halt();
    let p = a.assemble();

    let mut cfg = checked();
    cfg.inject_page_faults = vec![(xs / 0x1000 + 1) * 0x1000]; // mid-stream
    let mut sim = Pipeline::new(
        p,
        Box::new(ReuseRenamer::new(RenamerConfig::paper(48))),
        cfg,
    );
    let report = sim.run().expect("faulting post-increment run");
    assert!(report.halted);
    assert_eq!(report.exceptions, 1);
    assert_eq!(sim.memory().read_u64(out), (0..1024u64).sum::<u64>());
}
