//! Per-stage behaviour tests through the public pipeline API, now that
//! the stages are isolated modules: commit-stage exception ordering,
//! issue-stage wakeup on the writeback cycle, rename-stage stalls when
//! the in-flight rename records exhaust the free list — plus the
//! config-selected issue/recovery policy integrations and the per-bank
//! occupancy audit.

use regshare_core::{BaselineRenamer, Renamer, RenamerConfig, ReuseRenamer};
use regshare_isa::{reg, Asm, Program, RegClass};
use regshare_sim::{IssuePolicyKind, Pipeline, RecoveryPolicyKind, SimConfig, TraceStage};

fn baseline(regs: usize) -> Box<dyn Renamer> {
    Box::new(BaselineRenamer::new(RenamerConfig::baseline(regs)))
}

fn proposed(regs: usize) -> Box<dyn Renamer> {
    Box::new(ReuseRenamer::new(RenamerConfig::paper(regs)))
}

/// A loop whose exit branch is trivially predicted but whose inner
/// branch follows a pseudo-random (xorshift-style) bit — plenty of
/// mispredicts, so both recovery paths and the shadow-cell machinery
/// are exercised.
fn branchy_program(iters: i64) -> Program {
    let mut a = Asm::new();
    a.li(reg::x(1), iters);
    a.li(reg::x(2), 0x1234_5678);
    a.li(reg::x(4), 0);
    let top = a.label();
    let skip = a.label();
    a.bind(top);
    // x2 = x2 * 1103515245 + 12345 (a classic LCG step).
    a.li(reg::x(5), 1_103_515_245);
    a.mul(reg::x(2), reg::x(2), reg::x(5));
    a.addi(reg::x(2), reg::x(2), 12345);
    a.srli(reg::x(3), reg::x(2), 16);
    a.andi(reg::x(3), reg::x(3), 1);
    a.bne(reg::x(3), reg::zero(), skip);
    a.addi(reg::x(4), reg::x(4), 1);
    a.bind(skip);
    a.subi(reg::x(1), reg::x(1), 1);
    a.bne(reg::x(1), reg::zero(), top);
    a.halt();
    a.assemble()
}

// ---------------------------------------------------------------------
// Config-selected policies (IssuePolicyKind / RecoveryPolicyKind).
// ---------------------------------------------------------------------

#[test]
fn youngest_first_issue_runs_oracle_clean() {
    let mut oldest_cfg = SimConfig::test();
    oldest_cfg.issue_policy = IssuePolicyKind::OldestFirst;
    let mut youngest_cfg = SimConfig::test();
    youngest_cfg.issue_policy = IssuePolicyKind::YoungestFirst;

    let mut oldest = Pipeline::new(branchy_program(300), baseline(64), oldest_cfg);
    let mut youngest = Pipeline::new(branchy_program(300), baseline(64), youngest_cfg);
    let ro = oldest.run().expect("oldest-first run");
    let ry = youngest.run().expect("youngest-first run");

    // The select order may only reshuffle timing; the lockstep oracle
    // has already verified every committed instruction, and both runs
    // must retire the identical program.
    assert!(ro.halted && ry.halted);
    assert_eq!(ro.committed_instructions, ry.committed_instructions);
    assert_eq!(ro.committed_uops, ry.committed_uops);
}

#[test]
fn squash_all_recovery_matches_architecture_and_is_no_slower() {
    let mut walk_cfg = SimConfig::test();
    walk_cfg.recovery_policy = RecoveryPolicyKind::CheckpointWalk;
    let mut squash_cfg = SimConfig::test();
    squash_cfg.recovery_policy = RecoveryPolicyKind::SquashAll;

    // The proposed renamer issues shadow-cell recover commands on every
    // mispredict recovery, which is exactly what the two policies
    // charge differently.
    let mut walk = Pipeline::new(branchy_program(400), proposed(64), walk_cfg);
    let mut squash = Pipeline::new(branchy_program(400), proposed(64), squash_cfg);
    let rw = walk.run().expect("checkpoint-walk run");
    let rs = squash.run().expect("squash-all run");

    assert!(rw.halted && rs.halted);
    assert!(rw.mispredicts > 0, "program must mispredict to compare");
    assert_eq!(rw.committed_instructions, rs.committed_instructions);
    // Identical architectural restore on both policies.
    assert_eq!(rw.shadow_recovers, rs.shadow_recovers);
    assert!(rw.shadow_recovers > 0, "recovery machinery must engage");
    // Squash-all charges zero extra redirect cycles, so it can never be
    // slower than draining recover commands at recover_bandwidth/cycle.
    assert!(
        rs.cycles <= rw.cycles,
        "squash-all ({}) slower than checkpoint-walk ({})",
        rs.cycles,
        rw.cycles
    );
}

// ---------------------------------------------------------------------
// Commit stage: precise exception ordering.
// ---------------------------------------------------------------------

#[test]
fn commit_takes_fault_before_any_younger_op_commits() {
    let mut a = Asm::new();
    a.li(reg::x(1), 0x1_0000);
    a.li(reg::x(2), 7);
    a.st(reg::x(2), reg::x(1), 0); // first access to the page: faults once
    a.ld(reg::x(3), reg::x(1), 0);
    a.add(reg::x(4), reg::x(3), reg::x(2));
    a.halt();

    let mut cfg = SimConfig::test();
    cfg.inject_page_faults = vec![0x1_0000];
    cfg.trace = true;
    let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
    let report = sim.run().expect("faulting run");

    // The lockstep oracle verified every commit, so the younger load and
    // add observed the store's value only after the precise flush.
    assert!(report.halted);
    assert_eq!(report.exceptions, 1, "the page must fault exactly once");
    assert_eq!(report.committed_instructions, 6);

    // Commit order is total: no younger micro-op may slip past the
    // faulting head, so the commit trace is strictly seq-ordered.
    let commits: Vec<u64> = sim
        .take_trace()
        .into_iter()
        .filter(|e| e.stage == TraceStage::Commit)
        .map(|e| e.seq)
        .collect();
    assert!(!commits.is_empty());
    assert!(
        commits.windows(2).all(|w| w[0] < w[1]),
        "commit trace must be strictly ordered by sequence number"
    );
}

// ---------------------------------------------------------------------
// Issue stage: wakeup on the producer's writeback cycle.
// ---------------------------------------------------------------------

#[test]
fn dependent_op_issues_on_the_producer_writeback_cycle() {
    let mut a = Asm::new();
    a.li(reg::x(1), 3);
    a.li(reg::x(2), 5);
    a.mul(reg::x(3), reg::x(1), reg::x(2)); // 3-cycle producer at pc 2
    a.addi(reg::x(4), reg::x(3), 1); // consumer at pc 3
    a.halt();

    let mut cfg = SimConfig::test();
    cfg.trace = true;
    let mut sim = Pipeline::new(a.assemble(), baseline(64), cfg);
    sim.run().expect("run");
    let trace = sim.take_trace();

    let cycle_of = |pc: u64, stage: TraceStage| {
        trace
            .iter()
            .find(|e| e.pc == pc && e.stage == stage)
            .unwrap_or_else(|| panic!("no {stage:?} event for pc {pc}"))
            .cycle
    };
    let producer_wb = cycle_of(2, TraceStage::Writeback);
    let consumer_issue = cycle_of(3, TraceStage::Issue);
    // Writeback broadcasts readiness before issue selects within the
    // same cycle, so the consumer (long since dispatched and waiting
    // only on x3) must issue on exactly the producer's writeback cycle.
    assert_eq!(
        consumer_issue, producer_wb,
        "consumer must wake up in the same cycle the producer writes back"
    );
}

// ---------------------------------------------------------------------
// Rename stage: in-flight rename records exhaust the free list.
// ---------------------------------------------------------------------

#[test]
fn rename_stalls_when_inflight_renames_exhaust_free_registers() {
    // 36 physical registers leave only 4 for renaming; a stream of
    // back-to-back definitions keeps far more renames in flight than
    // that, so the rename stage must stall (and roll back cleanly, which
    // the oracle then verifies commit-by-commit).
    let mut a = Asm::new();
    a.li(reg::x(31), 200);
    let top = a.label();
    a.bind(top);
    for r in 1..=8 {
        a.addi(reg::x(r), reg::zero(), i64::from(r));
    }
    a.subi(reg::x(31), reg::x(31), 1);
    a.bne(reg::x(31), reg::zero(), top);
    a.halt();

    let mut sim = Pipeline::new(a.assemble(), baseline(36), SimConfig::test());
    let report = sim.run().expect("run");
    assert!(report.halted);
    assert!(
        report.rename_stall_cycles > 0,
        "a 4-register renaming headroom must stall the rename stage"
    );
}

// ---------------------------------------------------------------------
// Occupancy audit: per-bank occupancies sum to the allocated total.
// ---------------------------------------------------------------------

#[test]
fn occupancy_audit_passes_and_accessor_sums_match() {
    let mut cfg = SimConfig::test();
    cfg.audit_interval = 32;
    let mut sim = Pipeline::new(branchy_program(300), proposed(64), cfg);
    let report = sim.run().expect("audited run");
    assert!(report.halted);
    // Audits ran, and each one cross-checked sum(in_use_per_bank) ==
    // allocated_total (a mismatch fails the run with SimError::Invariant).
    assert!(sim.audits() > 0, "audit_interval must trigger audits");
    for class in RegClass::ALL {
        let per_bank = sim.renamer().in_use_per_bank(class);
        assert_eq!(
            per_bank.iter().sum::<usize>(),
            sim.renamer().allocated_total(class),
            "{class}: per-bank occupancy must sum to the allocated total"
        );
    }
}
