//! End-to-end pipeline tests: every program runs under both renaming
//! schemes with the lockstep functional oracle enabled, so any divergence
//! between the out-of-order timing model and the architectural semantics
//! fails the test.

use regshare_core::{BaselineRenamer, Renamer, RenamerConfig, ReuseRenamer};
use regshare_isa::{reg, Asm, DataBuilder, Machine, Program};
use regshare_sim::{Pipeline, SimConfig, SimReport};

fn run_both(program: &Program, config: &SimConfig) -> (SimReport, SimReport) {
    let base = BaselineRenamer::new(RenamerConfig::baseline(64));
    let mut sim = Pipeline::new(program.clone(), Box::new(base), config.clone());
    let a = sim.run().expect("baseline run must succeed");

    let reuse = ReuseRenamer::new(RenamerConfig::paper(64));
    let mut sim = Pipeline::new(program.clone(), Box::new(reuse), config.clone());
    let b = sim.run().expect("reuse run must succeed");
    (a, b)
}

fn checked() -> SimConfig {
    SimConfig::test()
}

#[test]
fn straight_line_arithmetic() {
    let mut a = Asm::new();
    a.li(reg::x(1), 6);
    a.li(reg::x(2), 7);
    a.mul(reg::x(3), reg::x(1), reg::x(2));
    a.addi(reg::x(3), reg::x(3), 100);
    a.halt();
    let p = a.assemble();
    let (base, reuse) = run_both(&p, &checked());
    assert_eq!(base.committed_instructions, 5);
    assert_eq!(reuse.committed_instructions, 5);
    assert!(base.halted && reuse.halted);
}

#[test]
fn dependent_chain_reuses_registers() {
    // A long chain of redefinitions: r1 = r1 op k — ideal for sharing.
    let mut a = Asm::new();
    a.li(reg::x(1), 1);
    let top = a.label();
    a.li(reg::x(2), 0);
    a.bind(top);
    a.addi(reg::x(1), reg::x(1), 1);
    a.addi(reg::x(1), reg::x(1), 2);
    a.addi(reg::x(1), reg::x(1), 3);
    a.addi(reg::x(2), reg::x(2), 1);
    a.slti(reg::x(3), reg::x(2), 50);
    a.bne(reg::x(3), reg::zero(), top);
    a.halt();
    let p = a.assemble();
    let (_base, reuse) = run_both(&p, &checked());
    assert!(
        reuse.rename.reuses > 50,
        "chained redefinitions should reuse heavily, got {}",
        reuse.rename.reuses
    );
}

#[test]
fn loop_with_memory_and_forwarding() {
    // Accumulate an array through memory, with store->load forwarding on
    // a scratch slot.
    let mut d = DataBuilder::new(0x1000);
    let xs = d.u64_array(&[3, 1, 4, 1, 5, 9, 2, 6]);
    let scratch = d.zeros(8);
    let out = d.zeros(8);
    let mut a = Asm::with_data(d);
    a.li(reg::x(1), xs as i64);
    a.li(reg::x(2), 8); // count
    a.li(reg::x(3), 0); // sum
    a.li(reg::x(5), scratch as i64);
    let top = a.label();
    a.bind(top);
    a.ld(reg::x(4), reg::x(1), 0);
    a.add(reg::x(3), reg::x(3), reg::x(4));
    a.st(reg::x(3), reg::x(5), 0); // store running sum
    a.ld(reg::x(6), reg::x(5), 0); // forwarded load
    a.addi(reg::x(1), reg::x(1), 8);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.li(reg::x(7), out as i64);
    a.st(reg::x(6), reg::x(7), 0);
    a.halt();
    let p = a.assemble();
    let (base, reuse) = run_both(&p, &checked());
    assert!(base.halted && reuse.halted);

    // Check the final memory value against the functional machine.
    let mut m = Machine::new(p.clone());
    m.run(10_000).unwrap();
    let expected = m.memory().read_u64(out);
    assert_eq!(expected, 31);

    let base_sim = {
        let r = BaselineRenamer::new(RenamerConfig::baseline(64));
        let mut s = Pipeline::new(p.clone(), Box::new(r), checked());
        s.run().unwrap();
        s.memory().read_u64(out)
    };
    assert_eq!(base_sim, expected);
    let reuse_sim = {
        let r = ReuseRenamer::new(RenamerConfig::paper(64));
        let mut s = Pipeline::new(p.clone(), Box::new(r), checked());
        s.run().unwrap();
        s.memory().read_u64(out)
    };
    assert_eq!(reuse_sim, expected);
}

#[test]
fn data_dependent_branches_mispredict_and_recover() {
    // Branch on a pseudo-random bit: forces mispredictions, so recovery
    // (including shadow-cell recovers in the reuse scheme) is exercised.
    let mut a = Asm::new();
    a.li(reg::x(1), 123456789); // lcg state
    a.li(reg::x(2), 200); // iterations
    a.li(reg::x(3), 0); // taken counter
    let top = a.label();
    let skip = a.label();
    a.bind(top);
    // state = state * 6364136223846793005 + 1442695040888963407
    a.li(reg::x(4), 6364136223846793005);
    a.mul(reg::x(1), reg::x(1), reg::x(4));
    a.li(reg::x(4), 1442695040888963407);
    a.add(reg::x(1), reg::x(1), reg::x(4));
    a.srli(reg::x(5), reg::x(1), 33);
    a.andi(reg::x(5), reg::x(5), 1);
    a.beq(reg::x(5), reg::zero(), skip);
    a.addi(reg::x(3), reg::x(3), 1);
    a.bind(skip);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.halt();
    let p = a.assemble();
    let (base, reuse) = run_both(&p, &checked());
    assert!(base.mispredicts > 10, "random branches must mispredict");
    assert!(reuse.mispredicts > 10);
}

#[test]
fn function_calls_through_ras() {
    let mut a = Asm::new();
    let func = a.label();
    let done = a.label();
    a.li(reg::x(1), 0);
    a.li(reg::x(2), 20);
    let top = a.label();
    a.bind(top);
    a.call(func);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.jmp(done);
    a.bind(func);
    a.addi(reg::x(1), reg::x(1), 3);
    a.ret();
    a.bind(done);
    a.halt();
    let p = a.assemble();
    let (base, reuse) = run_both(&p, &checked());
    assert!(base.halted && reuse.halted);
    assert_eq!(base.committed_instructions, reuse.committed_instructions);
}

#[test]
fn fp_kernel_matches_oracle() {
    // Dot product with FMA.
    let mut d = DataBuilder::new(0x4000);
    let xs = d.f64_array(&[1.5, 2.5, -3.0, 4.25]);
    let ys = d.f64_array(&[2.0, -1.0, 0.5, 8.0]);
    let out = d.zeros(8);
    let mut a = Asm::with_data(d);
    a.li(reg::x(1), xs as i64);
    a.li(reg::x(2), ys as i64);
    a.li(reg::x(3), 4);
    a.fli(reg::f(0), 0.0);
    let top = a.label();
    a.bind(top);
    a.fld(reg::f(1), reg::x(1), 0);
    a.fld(reg::f(2), reg::x(2), 0);
    a.fma(reg::f(0), reg::f(1), reg::f(2), reg::f(0));
    a.addi(reg::x(1), reg::x(1), 8);
    a.addi(reg::x(2), reg::x(2), 8);
    a.subi(reg::x(3), reg::x(3), 1);
    a.bne(reg::x(3), reg::zero(), top);
    a.li(reg::x(4), out as i64);
    a.fst(reg::f(0), reg::x(4), 0);
    a.halt();
    let p = a.assemble();
    let (_b, _r) = run_both(&p, &checked());
    let r = ReuseRenamer::new(RenamerConfig::paper(48));
    let mut s = Pipeline::new(p.clone(), Box::new(r), checked());
    s.run().unwrap();
    let got = f64::from_bits(s.memory().read_u64(out));
    let want = [(1.5, 2.0), (2.5, -1.0), (-3.0, 0.5), (4.25, 8.0)]
        .iter()
        .fold(0.0, |acc, (x, y)| acc + x * y);
    assert_eq!(got, want);
}

#[test]
fn page_fault_recovers_precisely() {
    let mut d = DataBuilder::new(0x8000);
    let xs = d.u64_array(&[10, 20, 30, 40]);
    let out = d.zeros(8);
    let mut a = Asm::with_data(d);
    a.li(reg::x(1), xs as i64);
    a.li(reg::x(2), 4);
    a.li(reg::x(3), 0);
    let top = a.label();
    a.bind(top);
    a.ld(reg::x(4), reg::x(1), 0);
    a.add(reg::x(3), reg::x(3), reg::x(4));
    a.addi(reg::x(1), reg::x(1), 8);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.li(reg::x(5), out as i64);
    a.st(reg::x(3), reg::x(5), 0);
    a.halt();
    let p = a.assemble();
    let mut cfg = checked();
    cfg.inject_page_faults = vec![xs];
    for (name, renamer) in [
        (
            "baseline",
            Box::new(BaselineRenamer::new(RenamerConfig::baseline(64))) as Box<dyn Renamer>,
        ),
        (
            "reuse",
            Box::new(ReuseRenamer::new(RenamerConfig::paper(64))) as Box<dyn Renamer>,
        ),
    ] {
        let mut s = Pipeline::new(p.clone(), renamer, cfg.clone());
        let rep = s.run().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(rep.halted, "{name} must finish");
        assert_eq!(rep.exceptions, 1, "{name} must take the injected fault");
        assert_eq!(s.memory().read_u64(out), 100, "{name} result after fault");
    }
}

#[test]
fn small_register_file_still_correct_under_pressure() {
    // 34 physical registers leave only 2 rename registers: constant
    // stalls, but execution must stay correct.
    let mut a = Asm::new();
    a.li(reg::x(1), 0);
    a.li(reg::x(2), 30);
    let top = a.label();
    a.bind(top);
    a.addi(reg::x(3), reg::x(1), 5);
    a.addi(reg::x(4), reg::x(3), 5);
    a.add(reg::x(1), reg::x(4), reg::zero());
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.halt();
    let p = a.assemble();
    let r = BaselineRenamer::new(RenamerConfig::baseline(34));
    let mut s = Pipeline::new(p.clone(), Box::new(r), checked());
    let rep = s.run().expect("tiny register file must still run");
    assert!(rep.halted);
    assert!(rep.rename_stall_cycles > 0, "expected rename stalls");

    let mut cfg = RenamerConfig::paper(48);
    cfg.int_banks = regshare_core::BankConfig::new(vec![30, 2, 1, 1]);
    cfg.fp_banks = cfg.int_banks.clone();
    let r = ReuseRenamer::new(cfg);
    let mut s = Pipeline::new(p, Box::new(r), checked());
    let rep = s.run().expect("tiny shared register file must still run");
    assert!(rep.halted);
}

#[test]
fn reuse_scheme_survives_speculative_reuse_plus_mispredicts() {
    // Mix of non-redefining single uses (speculative reuse candidates),
    // second uses (repairs) and unpredictable branches (squashes).
    let mut a = Asm::new();
    a.li(reg::x(1), 99991);
    a.li(reg::x(2), 300);
    let top = a.label();
    let odd = a.label();
    let join = a.label();
    a.bind(top);
    a.li(reg::x(4), 2862933555777941757);
    a.mul(reg::x(1), reg::x(1), reg::x(4));
    a.addi(reg::x(1), reg::x(1), 3037000493);
    a.srli(reg::x(5), reg::x(1), 62);
    // x6 = x5 + 1 : x5 used once here (speculative reuse candidate)
    a.addi(reg::x(6), reg::x(5), 1);
    a.bne(reg::x(6), reg::zero(), odd);
    a.addi(reg::x(7), reg::x(6), 7); // second use of x6 on this path
    a.jmp(join);
    a.bind(odd);
    a.addi(reg::x(7), reg::x(6), 3); // ... and on this one (repair!)
    a.bind(join);
    a.add(reg::x(8), reg::x(7), reg::x(8));
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.halt();
    let p = a.assemble();
    let r = ReuseRenamer::new(RenamerConfig::paper(48));
    let mut s = Pipeline::new(p, Box::new(r), checked());
    let rep = s
        .run()
        .expect("speculative reuse with repairs must stay correct");
    assert!(rep.halted);
}

#[test]
fn ipc_is_reasonable_for_ilp_rich_code() {
    // Independent operations: IPC should approach the commit width.
    let mut a = Asm::new();
    a.li(reg::x(10), 0);
    a.li(reg::x(11), 500);
    let top = a.label();
    a.bind(top);
    for i in 0..6 {
        a.addi(reg::x(i), reg::x(i), 1);
    }
    a.addi(reg::x(10), reg::x(10), 1);
    a.bne(reg::x(10), reg::x(11), top);
    a.halt();
    let p = a.assemble();
    let (base, _) = run_both(&p, &checked());
    assert!(
        base.ipc() > 1.5,
        "expected ILP-rich IPC, got {:.2}",
        base.ipc()
    );
}

#[test]
fn report_display_is_informative() {
    let mut a = Asm::new();
    a.li(reg::x(1), 1);
    a.halt();
    let (base, _) = run_both(&a.assemble(), &checked());
    let text = format!("{base}");
    assert!(text.contains("ipc="));
    assert!(text.contains("rename:"));
}
