//! Compile-time shim for the public API surface the stage refactor must
//! keep stable: the `Pipeline` entry points the workspace-level tests
//! (`tests/determinism.rs`, `tests/inject.rs`, `tests/auditor.rs`) and
//! the experiment harness link against, plus the re-exported types.
//! Renaming or re-typing any of these breaks this test at compile time.

use regshare_core::{BaselineRenamer, Renamer, RenamerConfig};
use regshare_isa::{reg, Asm};
use regshare_sim::{
    CheckpointWalk, HeadSnapshot, InjectSchedule, InjectStats, IssuePolicyKind, IssueSelect,
    OldestFirst, Pipeline, PipelineSnapshot, RecoveryPolicy, RecoveryPolicyKind, SimConfig,
    SimError, SimReport, SquashAll, TraceEvent, TraceStage, YoungestFirst,
};

#[test]
fn pipeline_public_api_is_stable() {
    let mut a = Asm::new();
    a.li(reg::x(1), 1);
    a.addi(reg::x(2), reg::x(1), 1);
    a.halt();
    let renamer: Box<dyn Renamer> = Box::new(BaselineRenamer::new(RenamerConfig::baseline(64)));
    let mut cfg = SimConfig::test();
    cfg.trace = true;
    cfg.audit_interval = 16;

    // Every method below is part of the stability contract.
    let mut sim = Pipeline::new(a.assemble(), renamer, cfg);
    sim.set_inject(InjectSchedule::seeded(1, 1_000));
    let report: Result<SimReport, SimError> = sim.run();
    let report = report.expect("tiny program runs clean");
    assert!(report.halted);
    let snap: PipelineSnapshot = sim.snapshot();
    let _head: &Option<HeadSnapshot> = &snap.head;
    let trace: Vec<TraceEvent> = sim.take_trace();
    assert!(trace.iter().any(|e| e.stage == TraceStage::Commit));
    let again: SimReport = sim.report();
    assert_eq!(again.committed_instructions, report.committed_instructions);
    let stats: InjectStats = sim.inject_stats();
    let _total: u64 = stats.total();
    let _audits: u64 = sim.audits();
    let _cycle: u64 = sim.cycle();
    let _renamer: &dyn Renamer = sim.renamer();
}

#[test]
fn policy_types_are_reexported_and_buildable() {
    let issue: Box<dyn IssueSelect> = IssuePolicyKind::YoungestFirst.build();
    assert_eq!(issue.name(), YoungestFirst.name());
    let issue: Box<dyn IssueSelect> = IssuePolicyKind::OldestFirst.build();
    assert_eq!(issue.name(), OldestFirst.name());
    let rec: Box<dyn RecoveryPolicy> = RecoveryPolicyKind::SquashAll.build();
    assert_eq!(rec.name(), SquashAll.name());
    let rec: Box<dyn RecoveryPolicy> = RecoveryPolicyKind::CheckpointWalk.build();
    assert_eq!(rec.name(), CheckpointWalk.name());
}
