//! Cooperative cancellation: a timed-out job must stop within a bounded
//! number of cycles instead of running to completion.

use regshare_core::{BaselineRenamer, Renamer, RenamerConfig};
use regshare_isa::{reg, Asm, Program};
use regshare_sim::{CancelToken, Pipeline, SimConfig, SimError, CANCEL_CHECK_INTERVAL};
use std::time::Duration;

fn baseline() -> Box<dyn Renamer> {
    Box::new(BaselineRenamer::new(RenamerConfig::baseline(64)))
}

fn endless_loop() -> Program {
    let mut a = Asm::new();
    let top = a.label();
    a.bind(top);
    a.addi(reg::x(1), reg::x(1), 1);
    a.jmp(top);
    a.assemble()
}

#[test]
fn pre_cancelled_run_stops_within_the_check_interval() {
    let mut sim = Pipeline::new(endless_loop(), baseline(), SimConfig::default());
    let token = CancelToken::new();
    token.cancel();
    sim.set_cancel(token);
    match sim.run() {
        Err(SimError::Cancelled { cycle }) => {
            assert!(
                cycle <= CANCEL_CHECK_INTERVAL,
                "bounded stop: cancelled at cycle {cycle}"
            );
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn mid_run_cancel_aborts_an_endless_program() {
    // No max_cycles / max_instructions: without the token this run
    // would spin forever (well past the test timeout).
    let mut sim = Pipeline::new(endless_loop(), baseline(), SimConfig::default());
    let token = CancelToken::new();
    sim.set_cancel(token.clone());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
    });
    let result = sim.run();
    canceller.join().unwrap();
    assert!(
        matches!(result, Err(SimError::Cancelled { .. })),
        "expected Cancelled, got {result:?}"
    );
    assert!(sim.cycle() > 0, "the run made progress before the cancel");
}

#[test]
fn uncancelled_token_does_not_perturb_results() {
    let program = {
        let mut a = Asm::new();
        a.li(reg::x(1), 40);
        let top = a.label();
        a.bind(top);
        a.subi(reg::x(1), reg::x(1), 1);
        a.bne(reg::x(1), reg::zero(), top);
        a.halt();
        a.assemble()
    };
    let mut plain = Pipeline::new(program.clone(), baseline(), SimConfig::test());
    let plain_report = plain.run().expect("plain run");
    let mut armed = Pipeline::new(program, baseline(), SimConfig::test());
    armed.set_cancel(CancelToken::new());
    let armed_report = armed.run().expect("armed run");
    assert_eq!(plain_report.cycles, armed_report.cycles);
    assert_eq!(
        plain_report.committed_instructions,
        armed_report.committed_instructions
    );
    assert!(armed_report.halted);
}

#[test]
fn cancelled_error_display_names_the_cycle() {
    let e = SimError::Cancelled { cycle: 2048 };
    assert!(format!("{e}").contains("2048"));
}
