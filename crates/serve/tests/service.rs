//! End-to-end exercises of the job service with controllable toy
//! executors: the happy path, cache hits, retry-then-succeed, panic
//! isolation + worker replacement, deadline cancellation, backpressure,
//! and journal-replay recovery. The root crate's `tests/serve.rs` runs
//! the same machinery against the real simulator.

use regshare_serve::{Client, JobExecutor, ServeConfig, Server};
use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("regshare-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn config(tag: &str) -> ServeConfig {
    ServeConfig {
        data_dir: temp_dir(tag),
        workers: 2,
        queue_capacity: 64,
        max_attempts: 3,
        deadline: Duration::from_secs(10),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..ServeConfig::default()
    }
}

fn payload(text: &str) -> Value {
    serde_json::from_str(text).expect("test payload")
}

/// Deterministic echo executor: result = `{"echo":<n>}`.
struct Echo;
impl JobExecutor for Echo {
    fn version(&self) -> String {
        "echo-1".into()
    }
    fn run(&self, payload: &Value, _cancel: &Arc<AtomicBool>) -> Result<String, String> {
        let n = payload
            .get("n")
            .and_then(Value::as_u64)
            .ok_or("missing n")?;
        Ok(format!("{{\"echo\":{n}}}"))
    }
}

/// Misbehaves on command: payloads select failure, panic, or hang.
struct Chaos {
    failures_left: AtomicU64,
}
impl JobExecutor for Chaos {
    fn version(&self) -> String {
        "chaos-1".into()
    }
    fn run(&self, payload: &Value, cancel: &Arc<AtomicBool>) -> Result<String, String> {
        match payload.get("mode").and_then(Value::as_str) {
            Some("flaky") => {
                // Fail the first N attempts service-wide, then succeed.
                if self
                    .failures_left
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    Err("transient failure".into())
                } else {
                    Ok("{\"ok\":true}".into())
                }
            }
            Some("panic") => panic!("injected worker crash"),
            Some("hang") => {
                // Cooperative infinite loop: only the cancel flag (the
                // deadline reaper) gets us out.
                while !cancel.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err("cancelled while hanging".into())
            }
            Some("fail") => Err("permanent failure".into()),
            _ => Ok("{\"ok\":true}".into()),
        }
    }
}

#[test]
fn jobs_complete_and_second_submission_hits_cache() {
    let server = Server::start(config("cache"), Arc::new(Echo)).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    let batch: Vec<Value> = (0..8).map(|n| payload(&format!("{{\"n\":{n}}}"))).collect();
    let ids = client.submit(&batch).unwrap();
    let rows = client.wait_terminal(&ids, Duration::from_secs(20)).unwrap();
    for (n, row) in rows.iter().enumerate() {
        assert_eq!(row.get("status").and_then(Value::as_str), Some("completed"));
        assert_eq!(
            row.get("result").and_then(Value::as_str),
            Some(format!("{{\"echo\":{n}}}").as_str())
        );
        assert_eq!(row.get("cached").and_then(Value::as_bool), Some(false));
    }

    // Same payloads again: all answered from the verified cache.
    let ids2 = client.submit(&batch).unwrap();
    let rows2 = client.wait_terminal(&ids2, Duration::from_secs(5)).unwrap();
    for (row, row2) in rows.iter().zip(&rows2) {
        assert_eq!(row2.get("cached").and_then(Value::as_bool), Some(true));
        // Byte-identical to the computed result.
        assert_eq!(
            row.get("result").and_then(Value::as_str),
            row2.get("result").and_then(Value::as_str)
        );
    }
    let stats = client.stats().unwrap();
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(8));
    assert!(stats
        .get("latency_ms")
        .and_then(|l| l.get("count"))
        .and_then(Value::as_u64)
        .is_some_and(|c| c >= 8));

    server.shutdown();
    server.join();
}

#[test]
fn flaky_jobs_retry_then_succeed() {
    let exec = Arc::new(Chaos {
        failures_left: AtomicU64::new(2),
    });
    let server = Server::start(config("flaky"), exec).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    let ids = client.submit(&[payload("{\"mode\":\"flaky\"}")]).unwrap();
    let rows = client.wait_terminal(&ids, Duration::from_secs(20)).unwrap();
    assert_eq!(
        rows[0].get("status").and_then(Value::as_str),
        Some("completed")
    );
    assert_eq!(rows[0].get("attempts").and_then(Value::as_u64), Some(3));
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("retries").and_then(Value::as_u64), Some(2));

    server.shutdown();
    server.join();
}

#[test]
fn permanent_failures_dead_letter_with_diagnostics() {
    let exec = Arc::new(Chaos {
        failures_left: AtomicU64::new(0),
    });
    let server = Server::start(config("dead"), exec).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    let ids = client.submit(&[payload("{\"mode\":\"fail\"}")]).unwrap();
    let rows = client.wait_terminal(&ids, Duration::from_secs(20)).unwrap();
    assert_eq!(
        rows[0].get("status").and_then(Value::as_str),
        Some("dead_lettered")
    );
    let err = rows[0].get("error").and_then(Value::as_str).unwrap();
    assert!(
        err.contains("attempt 3/3") && err.contains("permanent failure"),
        "diagnostic names the budget and cause: {err}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn panics_are_isolated_and_workers_replaced() {
    let exec = Arc::new(Chaos {
        failures_left: AtomicU64::new(0),
    });
    let server = Server::start(config("panic"), exec).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    // Panicking jobs and healthy jobs interleaved: every healthy job
    // still completes because the supervisor replaces crashed workers.
    let mut batch = vec![payload("{\"mode\":\"panic\"}")];
    for _ in 0..4 {
        batch.push(payload("{\"mode\":\"ok\"}"));
    }
    let ids = client.submit(&batch).unwrap();
    let rows = client.wait_terminal(&ids, Duration::from_secs(30)).unwrap();
    assert_eq!(
        rows[0].get("status").and_then(Value::as_str),
        Some("dead_lettered")
    );
    let err = rows[0].get("error").and_then(Value::as_str).unwrap();
    assert!(err.contains("injected worker crash"), "{err}");
    for row in &rows[1..] {
        assert_eq!(row.get("status").and_then(Value::as_str), Some("completed"));
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("panics").and_then(Value::as_u64), Some(3));
    assert!(
        stats
            .get("workers_replaced")
            .and_then(Value::as_u64)
            .is_some_and(|n| n >= 1),
        "supervisor replaced at least one worker"
    );

    server.shutdown();
    server.join();
}

#[test]
fn deadline_cancels_hanging_jobs() {
    let mut cfg = config("deadline");
    cfg.deadline = Duration::from_millis(100);
    cfg.max_attempts = 2;
    let exec = Arc::new(Chaos {
        failures_left: AtomicU64::new(0),
    });
    let server = Server::start(cfg, exec).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    let ids = client.submit(&[payload("{\"mode\":\"hang\"}")]).unwrap();
    let rows = client.wait_terminal(&ids, Duration::from_secs(20)).unwrap();
    assert_eq!(
        rows[0].get("status").and_then(Value::as_str),
        Some("dead_lettered")
    );
    let err = rows[0].get("error").and_then(Value::as_str).unwrap();
    assert!(err.contains("deadline exceeded"), "{err}");
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("timeouts").and_then(Value::as_u64), Some(2));

    server.shutdown();
    server.join();
}

#[test]
fn full_queue_rejects_whole_batches_with_429() {
    let mut cfg = config("backpressure");
    cfg.queue_capacity = 2;
    cfg.workers = 1;
    cfg.deadline = Duration::from_secs(2);
    let exec = Arc::new(Chaos {
        failures_left: AtomicU64::new(0),
    });
    let server = Server::start(cfg, exec).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    // Occupy the worker and fill the queue with hanging jobs.
    let _ids = client
        .submit(&[
            payload("{\"mode\":\"hang\"}"),
            payload("{\"mode\":\"hang\",\"x\":1}"),
        ])
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let body = "{\"jobs\":[{\"mode\":\"ok\"},{\"mode\":\"ok\",\"x\":2},{\"mode\":\"ok\",\"x\":3}]}";
    let (status, v) = client.request("POST", "/jobs", Some(body)).unwrap();
    assert_eq!(status, 429, "full queue refuses the batch: {v:?}");
    assert_eq!(v.get("error").and_then(Value::as_str), Some("queue full"));

    server.shutdown();
    server.join();
}

#[test]
fn drain_then_restart_replays_the_journal() {
    let cfg = config("replay");
    let data_dir = cfg.data_dir.clone();
    let server = Server::start(cfg.clone(), Arc::new(Echo)).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    // Two fast jobs complete; then drain immediately after queueing
    // more — the drained server leaves them journaled, not run.
    let done = client
        .submit(&[payload("{\"n\":1}"), payload("{\"n\":2}")])
        .unwrap();
    client
        .wait_terminal(&done, Duration::from_secs(10))
        .unwrap();
    server.shutdown();
    server.join();

    // Simulate a crash having left accepted-but-unfinished work: write
    // acceptance records straight into the journal tail, as if the
    // process died between accept and run.
    {
        use regshare_serve::{fnv1a64_hex, JobSpec};
        let spec = JobSpec {
            payload: payload("{\"n\":42}"),
        };
        let key = spec.cache_key("echo-1");
        let json = format!(
            "{{\"rec\":\"accepted\",\"id\":900,\"key\":\"{key}\",\"payload\":{{\"n\":42}}}}"
        );
        let line = format!("{} {json}\n", fnv1a64_hex(json.as_bytes()));
        let journal = data_dir.join("journal.log");
        let mut text = std::fs::read_to_string(&journal).unwrap();
        text.push_str(&line);
        // Plus a torn half-record, as a kill mid-append would leave.
        text.push_str("deadbeef {\"rec\":\"acce");
        std::fs::write(&journal, text).unwrap();
    }

    let server2 = Server::start(cfg, Arc::new(Echo)).unwrap();
    let client2 = Client::new(&format!("127.0.0.1:{}", server2.port()));
    // The interrupted job finishes without being resubmitted.
    let rows = client2
        .wait_terminal(&[900], Duration::from_secs(10))
        .unwrap();
    assert_eq!(
        rows[0].get("status").and_then(Value::as_str),
        Some("completed")
    );
    assert_eq!(
        rows[0].get("result").and_then(Value::as_str),
        Some("{\"echo\":42}")
    );
    // The two finished jobs are still terminal (served from cache state
    // rebuilt off the journal + verified cache), and the torn tail was
    // counted, not fatal.
    let rows = client2
        .wait_terminal(&done, Duration::from_secs(5))
        .unwrap();
    for row in &rows {
        assert_eq!(row.get("status").and_then(Value::as_str), Some("completed"));
        assert_eq!(row.get("cached").and_then(Value::as_bool), Some(true));
    }
    let stats = client2.stats().unwrap();
    assert_eq!(
        stats.get("journal_dropped").and_then(Value::as_u64),
        Some(1)
    );

    server2.shutdown();
    server2.join();
}

#[test]
fn healthz_flips_to_draining() {
    let server = Server::start(config("health"), Arc::new(Echo)).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));
    assert_eq!(
        client
            .healthz()
            .unwrap()
            .get("status")
            .and_then(Value::as_str),
        Some("ok")
    );
    client.shutdown_server().unwrap();
    assert_eq!(
        client
            .healthz()
            .unwrap()
            .get("status")
            .and_then(Value::as_str),
        Some("draining")
    );
    // Submissions during drain are refused with 503.
    let (status, _) = client
        .request("POST", "/jobs", Some("{\"jobs\":[{\"n\":1}]}"))
        .unwrap();
    assert_eq!(status, 503);
    server.join();
}
