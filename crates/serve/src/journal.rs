//! The append-only job journal — the service's crash-recovery record.
//!
//! Every lifecycle transition appends one line: `<fnv16hex> <compact
//! JSON>\n`, checksum over the JSON bytes. Appends are flushed and
//! fsynced, so a kill leaves at most one torn record — the unchecksummed
//! tail — which replay drops (with a count) instead of choking on.
//! Startup replays the journal to rebuild job state, then rewrites it
//! compacted through a temp file + atomic rename, so the file never
//! grows without bound and a crash mid-compaction leaves the previous
//! journal intact.

use crate::hash::fnv1a64_hex;
use serde::Value;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job was admitted (payload + content address).
    Accepted {
        /// Job id.
        id: u64,
        /// The job's JSON payload.
        payload: Value,
        /// Cache key under the executor version at admission.
        key: String,
    },
    /// An attempt began.
    Started {
        /// Job id.
        id: u64,
        /// 1-based attempt ordinal.
        attempt: u32,
    },
    /// The job completed; its result is in the cache under `key`.
    Completed {
        /// Job id.
        id: u64,
        /// Cache key holding the result payload.
        key: String,
    },
    /// The job exhausted its retries.
    DeadLettered {
        /// Job id.
        id: u64,
        /// Final diagnostic.
        error: String,
    },
}

impl Record {
    /// The record as a JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            Record::Accepted { id, payload, key } => Value::Object(vec![
                ("rec".into(), Value::Str("accepted".into())),
                ("id".into(), Value::UInt(*id)),
                ("key".into(), Value::Str(key.clone())),
                ("payload".into(), payload.clone()),
            ]),
            Record::Started { id, attempt } => Value::Object(vec![
                ("rec".into(), Value::Str("started".into())),
                ("id".into(), Value::UInt(*id)),
                ("attempt".into(), Value::UInt(*attempt as u64)),
            ]),
            Record::Completed { id, key } => Value::Object(vec![
                ("rec".into(), Value::Str("completed".into())),
                ("id".into(), Value::UInt(*id)),
                ("key".into(), Value::Str(key.clone())),
            ]),
            Record::DeadLettered { id, error } => Value::Object(vec![
                ("rec".into(), Value::Str("dead_lettered".into())),
                ("id".into(), Value::UInt(*id)),
                ("error".into(), Value::Str(error.clone())),
            ]),
        }
    }

    /// Parses a record from its JSON value.
    pub fn from_value(v: &Value) -> Option<Record> {
        let id = v.get("id")?.as_u64()?;
        match v.get("rec")?.as_str()? {
            "accepted" => Some(Record::Accepted {
                id,
                payload: v.get("payload")?.clone(),
                key: v.get("key")?.as_str()?.to_string(),
            }),
            "started" => Some(Record::Started {
                id,
                attempt: v.get("attempt")?.as_u64()? as u32,
            }),
            "completed" => Some(Record::Completed {
                id,
                key: v.get("key")?.as_str()?.to_string(),
            }),
            "dead_lettered" => Some(Record::DeadLettered {
                id,
                error: v.get("error")?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }
}

/// An open journal, append-mode.
pub struct Journal {
    path: PathBuf,
    file: File,
}

/// The result of replaying a journal file.
pub struct Replay {
    /// Verified records in append order.
    pub records: Vec<Record>,
    /// Lines dropped as torn or corrupt.
    pub dropped: usize,
}

fn encode(record: &Record) -> String {
    let json = serde_json::to_string(&record.to_value()).unwrap_or_else(|_| "null".into());
    format!("{} {json}\n", fnv1a64_hex(json.as_bytes()))
}

impl Journal {
    /// Opens (creating) a journal for appending.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Appends one record, flushed and fsynced before returning.
    pub fn append(&mut self, record: &Record) -> std::io::Result<()> {
        self.file.write_all(encode(record).as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()
    }

    /// Replays a journal file. Missing file = empty journal. Torn or
    /// checksum-failing lines are dropped and counted, never fatal.
    pub fn replay(path: &Path) -> Replay {
        let text = fs::read_to_string(path).unwrap_or_default();
        let mut records = Vec::new();
        let mut dropped = 0usize;
        let complete_tail = text.ends_with('\n');
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.is_empty() {
                continue;
            }
            let torn_tail = i + 1 == lines.len() && !complete_tail;
            let parsed = line.split_once(' ').and_then(|(sum, json)| {
                if fnv1a64_hex(json.as_bytes()) != sum {
                    return None;
                }
                Record::from_value(&serde_json::from_str(json).ok()?)
            });
            match parsed {
                Some(rec) if !torn_tail => records.push(rec),
                // A record on an unterminated final line may itself be
                // torn mid-byte in a way FNV can't catch for empty
                // suffixes; only checksum-verified, newline-terminated
                // lines count.
                _ => dropped += 1,
            }
        }
        Replay { records, dropped }
    }

    /// Atomically rewrites the journal to exactly `records` (temp file
    /// + rename), then reopens the append handle on the new file.
    pub fn compact(&mut self, records: &[Record]) -> std::io::Result<()> {
        let tmp = self
            .path
            .with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = File::create(&tmp)?;
            for rec in records {
                f.write_all(encode(rec).as_bytes())?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "regshare-journal-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d.join("journal.log")
    }

    fn sample() -> Vec<Record> {
        vec![
            Record::Accepted {
                id: 1,
                payload: serde_json::from_str("{\"kernel\":\"saxpy\"}").unwrap(),
                key: "abc".into(),
            },
            Record::Started { id: 1, attempt: 1 },
            Record::Completed {
                id: 1,
                key: "abc".into(),
            },
            Record::DeadLettered {
                id: 2,
                error: "deadline after 3 attempts".into(),
            },
        ]
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = tmp_path("roundtrip");
        let mut j = Journal::open(&path).unwrap();
        for rec in sample() {
            j.append(&rec).unwrap();
        }
        let replay = Journal::replay(&path);
        assert_eq!(replay.records, sample());
        assert_eq!(replay.dropped, 0);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmp_path("torn");
        let mut j = Journal::open(&path).unwrap();
        for rec in sample() {
            j.append(&rec).unwrap();
        }
        // Simulate a kill mid-append: chop the file mid-final-record.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 7]).unwrap();
        let replay = Journal::replay(&path);
        assert_eq!(replay.records.len(), sample().len() - 1);
        assert_eq!(replay.dropped, 1);
    }

    #[test]
    fn corrupt_line_is_dropped_and_counted() {
        let path = tmp_path("corrupt");
        let mut j = Journal::open(&path).unwrap();
        for rec in sample() {
            j.append(&rec).unwrap();
        }
        let text = fs::read_to_string(&path).unwrap();
        // Flip a byte inside the second line's JSON.
        let poisoned = text.replacen("\"attempt\":1", "\"attempt\":7", 1);
        assert_ne!(text, poisoned);
        fs::write(&path, poisoned).unwrap();
        let replay = Journal::replay(&path);
        assert_eq!(replay.dropped, 1);
        assert_eq!(replay.records.len(), sample().len() - 1);
        assert!(matches!(replay.records[0], Record::Accepted { id: 1, .. }));
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let replay = Journal::replay(Path::new("/nonexistent/journal.log"));
        assert!(replay.records.is_empty());
        assert_eq!(replay.dropped, 0);
    }

    #[test]
    fn compact_rewrites_then_appends() {
        let path = tmp_path("compact");
        let mut j = Journal::open(&path).unwrap();
        for rec in sample() {
            j.append(&rec).unwrap();
        }
        let keep = vec![sample()[0].clone()];
        j.compact(&keep).unwrap();
        j.append(&Record::Started { id: 1, attempt: 2 }).unwrap();
        let replay = Journal::replay(&path);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1], Record::Started { id: 1, attempt: 2 });
    }
}
