//! FNV-1a hashing: the service's content-address and checksum function.
//!
//! FNV-1a is deliberately simple — the cache and journal need a fast,
//! dependency-free, *stable* digest (the same bytes must hash the same
//! across processes and platforms), not a cryptographic one. Corruption
//! detection, not tamper resistance, is the threat model.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The digest as fixed-width lowercase hex (16 chars) — the spelling
/// used in cache filenames, journal checksums and cache-entry records.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(fnv1a64_hex(b"").len(), 16);
        assert_eq!(fnv1a64_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let a = fnv1a64(b"payload-v1");
        let b = fnv1a64(b"payload-v2");
        assert_ne!(a, b);
    }
}
