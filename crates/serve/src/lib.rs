#![warn(missing_docs)]

//! `regshare-serve` — a supervised, crash-safe simulation job service.
//!
//! ROADMAP item 2 made concrete: simulation capacity as a managed
//! runtime resource with explicit failure semantics. A hand-rolled
//! HTTP/1.1 + JSON listener on [`std::net::TcpListener`] (the build
//! container is offline — no tokio, no hyper; see `vendor/README.md`)
//! feeds a bounded job queue and a supervised worker pool:
//!
//! * **Panic isolation** — each attempt runs under `catch_unwind`; a
//!   panicking executor becomes a structured failure and the tainted
//!   worker thread is replaced by the supervisor, never taking the
//!   service down.
//! * **Deadlines + retries** — a reaper flips each attempt's
//!   cooperative cancel flag at its deadline; failed attempts re-queue
//!   with capped exponential backoff and deterministic jitter, then
//!   park in the dead-letter list with their final diagnostics.
//! * **Verified result cache** — content-addressed by `(executor
//!   version, canonical payload)`, each entry checksummed; corrupt
//!   entries are quarantined and recomputed, never served.
//! * **Crash recovery** — an append-only, checksummed job journal
//!   (atomic compaction) replayed on startup, so a killed server
//!   resumes pending work.
//! * **Graceful degradation** — full-queue submissions get `429` +
//!   `Retry-After`; SIGTERM/ctrl-C (or `POST /shutdown`) drains
//!   in-flight work and exits with a replayable journal; `/healthz` and
//!   `/stats` report queue depth, cache hit rate, retries and latency
//!   percentiles throughout.
//!
//! The service is generic over a [`JobExecutor`] — the root crate
//! plugs in the deterministic simulator (`experiments serve`), and the
//! chaos tests plug in misbehaving executors.
//!
//! # Examples
//!
//! ```
//! use regshare_serve::{Client, JobExecutor, ServeConfig, Server};
//! use serde::Value;
//! use std::sync::Arc;
//! use std::sync::atomic::AtomicBool;
//!
//! struct Doubler;
//! impl JobExecutor for Doubler {
//!     fn version(&self) -> String { "doubler-1".into() }
//!     fn run(&self, payload: &Value, _cancel: &Arc<AtomicBool>) -> Result<String, String> {
//!         let x = payload.get("x").and_then(Value::as_u64).ok_or("missing x")?;
//!         Ok(format!("{{\"doubled\":{}}}", 2 * x))
//!     }
//! }
//!
//! let dir = std::env::temp_dir().join(format!("serve-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let config = ServeConfig { data_dir: dir, ..ServeConfig::default() };
//! let server = Server::start(config, Arc::new(Doubler)).unwrap();
//! let client = Client::new(&format!("127.0.0.1:{}", server.port()));
//! let accepted = client.submit(&[serde_json::from_str("{\"x\":21}").unwrap()]).unwrap();
//! let done = client.wait_terminal(&accepted, std::time::Duration::from_secs(10)).unwrap();
//! assert_eq!(done[0].get("result").and_then(Value::as_str), Some("{\"doubled\":42}"));
//! server.shutdown();
//! server.join();
//! ```

mod cache;
mod client;
mod hash;
mod http;
mod job;
mod journal;
mod metrics;
mod queue;
mod server;
mod state;
mod worker;

pub use cache::{CacheRead, ResultCache};
pub use client::Client;
pub use hash::{fnv1a64, fnv1a64_hex};
pub use job::{JobExecutor, JobRecord, JobSpec, JobState};
pub use journal::{Journal, Record, Replay};
pub use metrics::Metrics;
pub use queue::BoundedQueue;
pub use server::{install_signal_handlers, shutdown_requested, Server};

use std::path::PathBuf;
use std::time::Duration;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back with
    /// [`Server::port`]).
    pub addr: String,
    /// Worker threads.
    pub workers: usize,
    /// Bounded-queue admission capacity (the backpressure point).
    pub queue_capacity: usize,
    /// Total attempts per job before dead-lettering (first run
    /// included).
    pub max_attempts: u32,
    /// Wall-clock budget per attempt; past it the reaper cancels the
    /// attempt cooperatively.
    pub deadline: Duration,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Directory holding `journal.log` and `cache/`.
    pub data_dir: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 256,
            max_attempts: 3,
            deadline: Duration::from_secs(60),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            data_dir: PathBuf::from("results/serve"),
        }
    }
}
