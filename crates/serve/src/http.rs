//! A deliberately small HTTP/1.1 subset over blocking [`TcpStream`]s:
//! enough for a JSON job API (request line, headers, `Content-Length`
//! bodies, `Connection: close` responses). No chunked encoding, no
//! keep-alive, no TLS — the service fronts a trusted lab network, and
//! the robustness budget is spent on job supervision instead.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the header block (guards against a stuck client).
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// The raw body (empty without `Content-Length`).
    pub body: String,
}

/// Reads one request from the stream. `Err` strings describe malformed
/// or oversized input; the caller answers 400 and closes.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("request line missing target")?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut h = String::new();
        reader
            .read_line(&mut h)
            .map_err(|e| format!("read header: {e}"))?;
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err("header block too large".into());
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".into());
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    Ok(Request { method, path, body })
}

/// Writes a JSON response and flushes. `retry_after` adds the
/// backpressure header (seconds).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    retry_after: Option<u64>,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some(secs) = retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &str) -> Result<Request, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = round_trip(
            "POST /jobs?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n",
        )
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"a\": 1}\n");
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip("GET /healthz HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_truncated_body() {
        let err = round_trip("POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert!(err.contains("read body"), "{err}");
    }

    #[test]
    fn response_carries_retry_after() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut conn, _) = listener.accept().unwrap();
        write_response(&mut conn, 429, "{}", Some(2)).unwrap();
        drop(conn);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
