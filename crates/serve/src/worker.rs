//! The supervised worker pool.
//!
//! Each worker pops job ids from the bounded queue and runs the
//! executor under [`std::panic::catch_unwind`] — a panicking job is
//! converted into a structured failure, and the worker thread that
//! caught it *exits* (its thread-local state is suspect after an
//! unwind) for the supervisor to replace. A reaper thread enforces
//! per-attempt deadlines by flipping the attempts' cooperative cancel
//! flags and pumps retry backoff timers. On drain, workers finish their
//! current attempt, the supervisor joins everything, and whatever is
//! left in the queue stays journaled for the next start to replay.

use crate::job::JobExecutor;
use crate::metrics::bump;
use crate::state::Shared;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a worker's loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerExit {
    /// Normal drain.
    Clean,
    /// Exited after catching a panic; needs replacement.
    Tainted,
}

/// The pool: workers + deadline reaper under one supervisor.
pub(crate) struct WorkerPool {
    supervisor: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(shared: &Arc<Shared>) -> WorkerExit {
    loop {
        if shared.is_draining() {
            return WorkerExit::Clean;
        }
        let Some(id) = shared.queue.pop_timeout(Duration::from_millis(50)) else {
            continue;
        };
        let Some((payload, cancel)) = shared.start_attempt(id) else {
            continue;
        };
        let executor: Arc<dyn JobExecutor> = Arc::clone(&shared.executor);
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| executor.run(&payload, &cancel)));
        let timed_out = shared.finish_attempt(id);
        match outcome {
            Ok(Ok(result)) => shared.complete(id, result, started.elapsed()),
            Ok(Err(error)) => {
                let error = if timed_out {
                    format!(
                        "deadline exceeded ({}ms budget): {error}",
                        shared.config.deadline.as_millis()
                    )
                } else {
                    error
                };
                shared.fail_attempt(id, error, timed_out, false);
            }
            Err(panic) => {
                let error = format!("worker panic: {}", panic_message(panic));
                shared.fail_attempt(id, error, timed_out, true);
                // The unwound thread is suspect; hand the slot back to
                // the supervisor for a fresh replacement.
                return WorkerExit::Tainted;
            }
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>, ordinal: usize) -> JoinHandle<WorkerExit> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("serve-worker-{ordinal}"))
        .spawn(move || worker_loop(&shared))
        .expect("spawn worker thread")
}

impl WorkerPool {
    /// Starts `shared.config.workers` workers, the deadline/retry
    /// reaper, and the supervisor that replaces tainted workers.
    pub fn spawn(shared: &Arc<Shared>) -> WorkerPool {
        let reaper = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name("serve-reaper".into())
                .spawn(move || {
                    while !shared.pool_done.load(Ordering::Acquire) {
                        let now = Instant::now();
                        shared.reap_deadlines(now);
                        shared.pump_retries(now);
                        std::thread::sleep(Duration::from_millis(5));
                    }
                })
                .expect("spawn reaper thread")
        };
        let supervisor = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || {
                    let mut next_ordinal = shared.config.workers;
                    let mut handles: Vec<JoinHandle<WorkerExit>> = (0..shared.config.workers)
                        .map(|k| spawn_worker(&shared, k))
                        .collect();
                    loop {
                        std::thread::sleep(Duration::from_millis(10));
                        let mut alive = Vec::with_capacity(handles.len());
                        for h in handles.drain(..) {
                            if !h.is_finished() {
                                alive.push(h);
                                continue;
                            }
                            let exit = h.join().unwrap_or(WorkerExit::Tainted);
                            if exit == WorkerExit::Tainted && !shared.is_draining() {
                                bump(&shared.metrics.workers_replaced);
                                alive.push(spawn_worker(&shared, next_ordinal));
                                next_ordinal += 1;
                            }
                        }
                        handles = alive;
                        if shared.is_draining() && handles.is_empty() {
                            break;
                        }
                    }
                    shared.pool_done.store(true, Ordering::Release);
                })
                .expect("spawn supervisor thread")
        };
        WorkerPool {
            supervisor: Some(supervisor),
            reaper: Some(reaper),
        }
    }

    /// Joins the supervisor (which joins the workers) and the reaper.
    /// Call after setting the drain flag.
    pub fn join(&mut self) {
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
    }

    /// Live worker count (configured size; replacements keep it there).
    pub fn configured_workers(shared: &Shared) -> usize {
        shared.config.workers
    }
}

// The pool is exercised end-to-end through the server tests in
// `tests/service.rs` and the root chaos campaign; the unit tests here
// pin the panic-message extraction used in dead-letter diagnostics.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_messages_are_extracted() {
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new(String::from("ouch"))), "ouch");
        assert_eq!(panic_message(Box::new(17u32)), "non-string panic payload");
    }
}
