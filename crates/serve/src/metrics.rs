//! Service metrics: lock-free counters plus a latency reservoir, the
//! source of the `/stats` endpoint's queue depth, cache hit rate, retry
//! counts and per-job latency percentiles.

use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonic counters and completed-job latencies.
#[derive(Default)]
pub struct Metrics {
    /// Jobs received over HTTP (before admission control).
    pub submitted: AtomicU64,
    /// Jobs admitted to the queue.
    pub accepted: AtomicU64,
    /// Whole batches refused with 429 because the queue was full.
    pub rejected_full: AtomicU64,
    /// Jobs answered straight from the verified result cache.
    pub cache_hits: AtomicU64,
    /// Jobs that had to be computed.
    pub cache_misses: AtomicU64,
    /// Cache entries that failed checksum verification and were
    /// quarantined instead of served.
    pub cache_quarantined: AtomicU64,
    /// Jobs completed by a worker.
    pub completed: AtomicU64,
    /// Failed attempts that were re-queued with backoff.
    pub retries: AtomicU64,
    /// Attempts cancelled at their deadline.
    pub timeouts: AtomicU64,
    /// Attempts that panicked inside the executor.
    pub panics: AtomicU64,
    /// Jobs parked in the dead-letter list after exhausting retries.
    pub dead_letters: AtomicU64,
    /// Worker threads replaced by the supervisor after a panic.
    pub workers_replaced: AtomicU64,
    /// Journal records dropped as corrupt/truncated during replay.
    pub journal_dropped: AtomicU64,
    /// Wall-clock seconds of each successful attempt, keyed for
    /// percentile queries. Unbounded in principle; in practice the
    /// service runs bounded batches (and 8 bytes/job is cheap).
    latencies: Mutex<Vec<f64>>,
}

fn get(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

/// Bumps a counter by one.
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

impl Metrics {
    /// Records one successful attempt's wall-clock latency.
    pub fn record_latency(&self, seconds: f64) {
        self.latencies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(seconds);
    }

    /// The `q`-quantile (0..=1) of recorded latencies in milliseconds
    /// (nearest-rank), or 0 with no observations.
    pub fn latency_ms(&self, q: f64) -> f64 {
        let lat = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if lat.is_empty() {
            return 0.0;
        }
        let mut sorted = lat.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1] * 1000.0
    }

    /// Cache hit rate over all lookups so far (0 with no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = get(&self.cache_hits) as f64;
        let total = hits + get(&self.cache_misses) as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// The `/stats` JSON body (queue depth and worker count are owned by
    /// the server and passed in).
    pub fn snapshot(&self, queue_depth: usize, workers: usize, draining: bool) -> Value {
        let count = self
            .latencies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len();
        Value::Object(vec![
            ("queue_depth".into(), Value::UInt(queue_depth as u64)),
            ("workers".into(), Value::UInt(workers as u64)),
            ("draining".into(), Value::Bool(draining)),
            ("submitted".into(), Value::UInt(get(&self.submitted))),
            ("accepted".into(), Value::UInt(get(&self.accepted))),
            (
                "rejected_full".into(),
                Value::UInt(get(&self.rejected_full)),
            ),
            ("completed".into(), Value::UInt(get(&self.completed))),
            ("retries".into(), Value::UInt(get(&self.retries))),
            ("timeouts".into(), Value::UInt(get(&self.timeouts))),
            ("panics".into(), Value::UInt(get(&self.panics))),
            ("dead_letters".into(), Value::UInt(get(&self.dead_letters))),
            (
                "workers_replaced".into(),
                Value::UInt(get(&self.workers_replaced)),
            ),
            (
                "journal_dropped".into(),
                Value::UInt(get(&self.journal_dropped)),
            ),
            (
                "cache".into(),
                Value::Object(vec![
                    ("hits".into(), Value::UInt(get(&self.cache_hits))),
                    ("misses".into(), Value::UInt(get(&self.cache_misses))),
                    (
                        "quarantined".into(),
                        Value::UInt(get(&self.cache_quarantined)),
                    ),
                    ("hit_rate".into(), Value::Float(self.cache_hit_rate())),
                ]),
            ),
            (
                "latency_ms".into(),
                Value::Object(vec![
                    ("count".into(), Value::UInt(count as u64)),
                    ("p50".into(), Value::Float(self.latency_ms(0.50))),
                    ("p90".into(), Value::Float(self.latency_ms(0.90))),
                    ("p99".into(), Value::Float(self.latency_ms(0.99))),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let m = Metrics::default();
        for v in [0.010, 0.020, 0.030, 0.040] {
            m.record_latency(v);
        }
        assert!((m.latency_ms(0.50) - 20.0).abs() < 1e-9);
        assert!((m.latency_ms(0.99) - 40.0).abs() < 1e-9);
        assert_eq!(Metrics::default().latency_ms(0.5), 0.0);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        let m = Metrics::default();
        assert_eq!(m.cache_hit_rate(), 0.0);
        bump(&m.cache_hits);
        bump(&m.cache_hits);
        bump(&m.cache_misses);
        assert!((m.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_reports_every_section() {
        let m = Metrics::default();
        bump(&m.retries);
        m.record_latency(0.005);
        let s = m.snapshot(3, 2, false);
        assert_eq!(s.get("queue_depth").and_then(Value::as_u64), Some(3));
        assert_eq!(s.get("retries").and_then(Value::as_u64), Some(1));
        let lat = s.get("latency_ms").expect("latency section");
        assert_eq!(lat.get("count").and_then(Value::as_u64), Some(1));
        assert!(s.get("cache").is_some());
    }
}
