//! A small blocking client for the job API: batch submission with
//! 429-aware retry, polling until jobs reach a terminal state, and the
//! admin endpoints. Used by `experiments submit`, the smoke script and
//! the chaos tests.

use serde::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A client bound to one server address.
pub struct Client {
    addr: String,
}

fn parse_response(text: &str) -> Result<(u16, Value), String> {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("malformed response: no header/body separator")?;
    let status_line = head.lines().next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;
    let value = if body.trim().is_empty() {
        Value::Null
    } else {
        serde_json::from_str(body).map_err(|e| format!("bad JSON from server: {e}"))?
    };
    Ok((status, value))
}

impl Client {
    /// A client for `host:port`.
    pub fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
        }
    }

    /// One request/response cycle (`Connection: close`, so the response
    /// is simply everything until EOF).
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, Value), String> {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let body = body.unwrap_or("");
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        stream
            .write_all(raw.as_bytes())
            .map_err(|e| format!("send request: {e}"))?;
        let mut text = String::new();
        stream
            .read_to_string(&mut text)
            .map_err(|e| format!("read response: {e}"))?;
        parse_response(&text)
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<Value, String> {
        let (status, v) = self.request("GET", "/healthz", None)?;
        if status == 200 {
            Ok(v)
        } else {
            Err(format!("healthz returned {status}"))
        }
    }

    /// `GET /stats`.
    pub fn stats(&self) -> Result<Value, String> {
        let (status, v) = self.request("GET", "/stats", None)?;
        if status == 200 {
            Ok(v)
        } else {
            Err(format!("stats returned {status}"))
        }
    }

    /// Submits one batch of payloads, honouring `Retry-After` on 429 (up
    /// to ~30s of backpressure). Returns the accepted job ids.
    pub fn submit(&self, payloads: &[Value]) -> Result<Vec<u64>, String> {
        let body = serde_json::to_string(&Value::Object(vec![(
            "jobs".to_string(),
            Value::Array(payloads.to_vec()),
        )]))
        .map_err(|e| format!("encode batch: {e}"))?;
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (status, v) = self.request("POST", "/jobs", Some(&body))?;
            match status {
                202 => {
                    let ids = v
                        .get("jobs")
                        .and_then(Value::as_array)
                        .map(|rows| {
                            rows.iter()
                                .filter_map(|r| r.get("id").and_then(Value::as_u64))
                                .collect::<Vec<u64>>()
                        })
                        .unwrap_or_default();
                    if ids.len() != payloads.len() {
                        return Err(format!(
                            "server accepted {} of {} jobs",
                            ids.len(),
                            payloads.len()
                        ));
                    }
                    return Ok(ids);
                }
                429 if Instant::now() < deadline => {
                    // The server said how long to back off; one second
                    // is its current answer either way.
                    std::thread::sleep(Duration::from_millis(1000));
                }
                _ => {
                    let msg = v
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown error");
                    return Err(format!("submit failed: {status}: {msg}"));
                }
            }
        }
    }

    /// `GET /jobs/<id>`.
    pub fn job(&self, id: u64) -> Result<Value, String> {
        let (status, v) = self.request("GET", &format!("/jobs/{id}"), None)?;
        if status == 200 {
            Ok(v)
        } else {
            Err(format!("job {id} returned {status}"))
        }
    }

    /// Polls until every listed job is terminal (completed or
    /// dead-lettered) or `timeout` passes. Returns the job rows in the
    /// order of `ids`.
    pub fn wait_terminal(&self, ids: &[u64], timeout: Duration) -> Result<Vec<Value>, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut rows = Vec::with_capacity(ids.len());
            let mut pending = 0usize;
            for &id in ids {
                let row = self.job(id)?;
                let terminal = matches!(
                    row.get("status").and_then(Value::as_str),
                    Some("completed") | Some("dead_lettered")
                );
                if !terminal {
                    pending += 1;
                }
                rows.push(row);
            }
            if pending == 0 {
                return Ok(rows);
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "{pending} of {} jobs still pending at timeout",
                    ids.len()
                ));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// `POST /shutdown` — ask the server to drain.
    pub fn shutdown_server(&self) -> Result<(), String> {
        let (status, _) = self.request("POST", "/shutdown", None)?;
        if status == 200 {
            Ok(())
        } else {
            Err(format!("shutdown returned {status}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let (status, v) = parse_response(
            "HTTP/1.1 202 Accepted\r\nContent-Type: application/json\r\n\r\n{\"jobs\":[]}",
        )
        .unwrap();
        assert_eq!(status, 202);
        assert!(v.get("jobs").is_some());
    }

    #[test]
    fn empty_body_is_null() {
        let (status, v) = parse_response("HTTP/1.1 200 OK\r\n\r\n").unwrap();
        assert_eq!(status, 200);
        assert!(v.is_null());
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(parse_response("not http").is_err());
        assert!(parse_response("HTTP/1.1 abc\r\n\r\n{}").is_err());
    }
}
