//! The bounded job queue: the service's backpressure point.
//!
//! Client intake goes through [`BoundedQueue::try_push_batch`], which
//! refuses whole batches that do not fit — the HTTP layer turns that
//! refusal into `429 Too Many Requests` + `Retry-After`. Internal
//! re-queues (retries, journal replay) use [`BoundedQueue::push_force`]:
//! a job the service has already accepted must never be dropped because
//! clients kept the queue full.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A Mutex+Condvar bounded MPMC queue of job ids.
pub struct BoundedQueue {
    inner: Mutex<VecDeque<u64>>,
    capacity: usize,
    ready: Condvar,
}

/// Lock helper that survives poisoning: a panicking thread elsewhere
/// must not take the queue (and with it the whole service) down.
fn lock(m: &Mutex<VecDeque<u64>>) -> MutexGuard<'_, VecDeque<u64>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl BoundedQueue {
    /// An empty queue admitting at most `capacity` client-submitted jobs.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            ready: Condvar::new(),
        }
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a whole batch or nothing: `false` when the batch would
    /// push the depth past capacity (the backpressure signal).
    pub fn try_push_batch(&self, ids: &[u64]) -> bool {
        let mut q = lock(&self.inner);
        if q.len() + ids.len() > self.capacity {
            return false;
        }
        q.extend(ids.iter().copied());
        drop(q);
        self.ready.notify_all();
        true
    }

    /// Enqueues unconditionally (internal retries / replay — accepted
    /// work is never dropped, even past capacity).
    pub fn push_force(&self, id: u64) {
        lock(&self.inner).push_back(id);
        self.ready.notify_one();
    }

    /// Pops the oldest id, waiting up to `timeout`. `None` on timeout —
    /// workers use the timeout to re-check the drain flag.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<u64> {
        let mut q = lock(&self.inner);
        if let Some(id) = q.pop_front() {
            return Some(id);
        }
        let (mut q, _res) = self
            .ready
            .wait_timeout(q, timeout)
            .unwrap_or_else(|e| e.into_inner());
        q.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_admission_is_all_or_nothing() {
        let q = BoundedQueue::new(3);
        assert!(q.try_push_batch(&[1, 2]));
        assert!(!q.try_push_batch(&[3, 4]), "would exceed capacity");
        assert_eq!(q.len(), 2);
        assert!(q.try_push_batch(&[3]));
        assert!(!q.try_push_batch(&[4]), "full");
    }

    #[test]
    fn force_push_ignores_capacity() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push_batch(&[1]));
        q.push_force(2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_is_fifo_and_times_out() {
        let q = BoundedQueue::new(8);
        assert!(q.try_push_batch(&[7, 8]));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(7));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(8));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn pop_wakes_on_concurrent_push() {
        let q = std::sync::Arc::new(BoundedQueue::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push_force(42);
        assert_eq!(t.join().unwrap(), Some(42));
    }
}
