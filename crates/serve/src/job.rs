//! Job model: specs, lifecycle states, and the executor the service
//! supervises.
//!
//! The service is generic over what a "job" computes. A [`JobSpec`] is
//! an opaque JSON payload; the host supplies a [`JobExecutor`] that
//! turns a payload into a result string. Executors must be
//! **deterministic** (same payload → byte-identical result) and
//! **cooperative** (poll the cancel flag) — the cache, retry and
//! verification machinery all lean on the first property, the deadline
//! machinery on the second.

use crate::hash::fnv1a64_hex;
use serde::Value;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// What one job computes, as an opaque JSON payload.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The job's parameters (kernel, scheme, sizes... — the service
    /// never interprets them).
    pub payload: Value,
}

impl JobSpec {
    /// The canonical byte representation: compact JSON with the field
    /// order the client sent. Hashing and byte-comparison both use this
    /// spelling.
    pub fn canonical(&self) -> String {
        serde_json::to_string(&self.payload).unwrap_or_else(|_| "null".into())
    }

    /// The content address: FNV-1a over `version \n canonical-payload`.
    /// Bumping the executor version invalidates every cached result.
    pub fn cache_key(&self, version: &str) -> String {
        fnv1a64_hex(format!("{version}\n{}", self.canonical()).as_bytes())
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the bounded queue (or for a retry slot).
    Queued,
    /// On a worker right now.
    Running,
    /// Finished with a verified result payload.
    Completed {
        /// The executor's result string (or the cached copy).
        result: String,
        /// Served from the result cache without running.
        cached: bool,
    },
    /// Failed every attempt; parked with its final diagnostic.
    DeadLettered {
        /// The last attempt's error (carries the pipeline snapshot text
        /// for simulation failures).
        error: String,
    },
}

impl JobState {
    /// The status word reported over the API.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed { .. } => "completed",
            JobState::DeadLettered { .. } => "dead_lettered",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed { .. } | JobState::DeadLettered { .. }
        )
    }
}

/// One tracked job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Server-assigned id (dense, stable across journal replay).
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Content-address under the current executor version.
    pub key: String,
    /// Attempts started so far.
    pub attempts: u32,
    /// Lifecycle state.
    pub state: JobState,
}

impl JobRecord {
    /// The API representation of this job.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), Value::UInt(self.id)),
            ("key".to_string(), Value::Str(self.key.clone())),
            (
                "status".to_string(),
                Value::Str(self.state.label().to_string()),
            ),
            ("attempts".to_string(), Value::UInt(self.attempts as u64)),
            ("spec".to_string(), self.spec.payload.clone()),
        ];
        match &self.state {
            JobState::Completed { result, cached } => {
                fields.push(("cached".to_string(), Value::Bool(*cached)));
                fields.push(("result".to_string(), Value::Str(result.clone())));
            }
            JobState::DeadLettered { error } => {
                fields.push(("error".to_string(), Value::Str(error.clone())));
            }
            _ => {}
        }
        Value::Object(fields)
    }
}

/// The computation the service supervises.
pub trait JobExecutor: Send + Sync + 'static {
    /// Version string folded into every cache key (bump on any change
    /// that could alter results — simulator revision, result schema).
    fn version(&self) -> String;

    /// Runs one job to completion, polling `cancel` cooperatively; a
    /// deadline reaper flips the flag when the attempt's budget
    /// expires. `Err` is a human-readable diagnostic (the service
    /// retries and eventually dead-letters with it). Panics are caught,
    /// isolated, and treated like `Err`.
    fn run(&self, payload: &Value, cancel: &Arc<AtomicBool>) -> Result<String, String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> JobSpec {
        JobSpec {
            payload: serde_json::from_str(text).unwrap(),
        }
    }

    #[test]
    fn cache_key_depends_on_payload_and_version() {
        let a = spec("{\"kernel\":\"saxpy\",\"rf\":64}");
        let b = spec("{\"kernel\":\"saxpy\",\"rf\":80}");
        assert_ne!(a.cache_key("v1"), b.cache_key("v1"));
        assert_ne!(a.cache_key("v1"), a.cache_key("v2"));
        assert_eq!(a.cache_key("v1"), a.cache_key("v1"));
    }

    #[test]
    fn canonical_is_compact() {
        assert_eq!(
            spec("{ \"a\" : 1 , \"b\" : [true] }").canonical(),
            "{\"a\":1,\"b\":[true]}"
        );
    }

    #[test]
    fn state_labels_and_terminality() {
        assert_eq!(JobState::Queued.label(), "queued");
        assert!(!JobState::Running.is_terminal());
        let done = JobState::Completed {
            result: "{}".into(),
            cached: true,
        };
        assert!(done.is_terminal());
        let dead = JobState::DeadLettered { error: "x".into() };
        assert_eq!(dead.label(), "dead_lettered");
        assert!(dead.is_terminal());
    }

    #[test]
    fn record_value_carries_result_or_error() {
        let mut rec = JobRecord {
            id: 3,
            spec: spec("{\"k\":1}"),
            key: "abc".into(),
            attempts: 2,
            state: JobState::Completed {
                result: "{\"ipc\":1.0}".into(),
                cached: false,
            },
        };
        let v = rec.to_value();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("completed"));
        assert_eq!(v.get("attempts").and_then(Value::as_u64), Some(2));
        assert!(v.get("result").is_some());
        rec.state = JobState::DeadLettered {
            error: "deadline".into(),
        };
        let v = rec.to_value();
        assert_eq!(v.get("error").and_then(Value::as_str), Some("deadline"));
        assert!(v.get("result").is_none());
    }
}
