//! The content-addressed, checksum-verified result cache.
//!
//! Entries live at `<dir>/<key>.json`, one file per key, where the key
//! already encodes the executor version (see
//! [`crate::JobSpec::cache_key`]). Each entry records its payload's
//! FNV-1a checksum; reads re-hash the payload and refuse entries that
//! do not verify — a corrupt entry is **quarantined** (renamed to
//! `<key>.corrupt`) and reported as a miss so the job is recomputed,
//! never served bad bytes. Writes go through a temp file + atomic
//! rename, so a crash mid-write leaves either the old entry or none.

use crate::hash::fnv1a64_hex;
use serde::Value;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// On-disk result cache rooted at one directory.
pub struct ResultCache {
    dir: PathBuf,
}

/// What a lookup found.
#[derive(Debug, PartialEq, Eq)]
pub enum CacheRead {
    /// Entry present and checksum-verified; the payload.
    Hit(String),
    /// No entry.
    Miss,
    /// Entry present but corrupt; moved aside to `<key>.corrupt`.
    Quarantined,
}

impl ResultCache {
    /// Opens (creating) a cache directory.
    pub fn open(dir: &Path) -> std::io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The entry path for a key.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// The quarantine path for a key.
    pub fn quarantine_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.corrupt"))
    }

    /// Looks up and verifies an entry.
    pub fn get(&self, key: &str) -> CacheRead {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return CacheRead::Miss,
        };
        match Self::verify(key, &text) {
            Some(payload) => CacheRead::Hit(payload),
            None => {
                // Quarantine: keep the evidence, clear the address. A
                // failed rename still must not serve the entry.
                let _ = fs::rename(&path, self.quarantine_path(key));
                let _ = fs::remove_file(&path);
                CacheRead::Quarantined
            }
        }
    }

    /// Parses an entry and returns the payload only if the stored key
    /// matches and the checksum verifies.
    fn verify(key: &str, text: &str) -> Option<String> {
        let v = serde_json::from_str(text).ok()?;
        let stored_key = v.get("key")?.as_str()?;
        let checksum = v.get("checksum")?.as_str()?;
        let payload = v.get("payload")?.as_str()?;
        if stored_key != key || fnv1a64_hex(payload.as_bytes()) != checksum {
            return None;
        }
        Some(payload.to_string())
    }

    /// Stores a payload under a key (temp file + atomic rename).
    pub fn put(&self, key: &str, payload: &str) -> std::io::Result<()> {
        let entry = Value::Object(vec![
            ("key".to_string(), Value::Str(key.to_string())),
            (
                "checksum".to_string(),
                Value::Str(fnv1a64_hex(payload.as_bytes())),
            ),
            ("payload".to_string(), Value::Str(payload.to_string())),
        ]);
        let text = serde_json::to_string_pretty(&entry)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let tmp = self.dir.join(format!("{key}.tmp.{}", std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.entry_path(key))
    }

    /// Number of verified-format entries currently stored (test/stats
    /// helper; does not verify checksums).
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("regshare-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn put_then_get_round_trips() {
        let cache = ResultCache::open(&tmp_dir("roundtrip")).unwrap();
        assert_eq!(cache.get("aa"), CacheRead::Miss);
        cache.put("aa", "{\"ipc\":1.25}").unwrap();
        assert_eq!(cache.get("aa"), CacheRead::Hit("{\"ipc\":1.25}".into()));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_served() {
        let cache = ResultCache::open(&tmp_dir("corrupt")).unwrap();
        cache.put("bb", "{\"ipc\":2.0}").unwrap();
        // Flip payload bytes without updating the checksum.
        let path = cache.entry_path("bb");
        let poisoned = fs::read_to_string(&path).unwrap().replace("2.0", "9.9");
        fs::write(&path, poisoned).unwrap();
        assert_eq!(cache.get("bb"), CacheRead::Quarantined);
        assert!(cache.quarantine_path("bb").exists(), "evidence kept");
        assert!(!cache.entry_path("bb").exists(), "address cleared");
        // Subsequent lookups are plain misses; a re-put works again.
        assert_eq!(cache.get("bb"), CacheRead::Miss);
        cache.put("bb", "{\"ipc\":2.0}").unwrap();
        assert_eq!(cache.get("bb"), CacheRead::Hit("{\"ipc\":2.0}".into()));
    }

    #[test]
    fn truncated_entry_is_quarantined() {
        let cache = ResultCache::open(&tmp_dir("trunc")).unwrap();
        cache.put("cc", "{\"x\":1}").unwrap();
        let path = cache.entry_path("cc");
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(cache.get("cc"), CacheRead::Quarantined);
    }

    #[test]
    fn entry_under_wrong_key_is_rejected() {
        let cache = ResultCache::open(&tmp_dir("wrongkey")).unwrap();
        cache.put("dd", "{\"x\":1}").unwrap();
        fs::rename(cache.entry_path("dd"), cache.entry_path("ee")).unwrap();
        assert_eq!(cache.get("ee"), CacheRead::Quarantined);
    }
}
