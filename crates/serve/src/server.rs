//! The HTTP front end: listener, routing, journal replay on startup,
//! and the drain/shutdown protocol.
//!
//! Startup replays `journal.log` (re-queueing work that never reached a
//! terminal state — completed jobs come back from the verified cache,
//! and a corrupt cache entry silently re-queues the job instead), then
//! compacts the journal so it never grows without bound. Shutdown
//! (SIGTERM/ctrl-C via [`install_signal_handlers`], or `POST
//! /shutdown`) flips the drain flag: submissions get `503`, workers
//! finish their current attempts, and whatever stays queued is left
//! journaled for the next start to replay.

use crate::cache::{CacheRead, ResultCache};
use crate::http::{read_request, write_response, Request};
use crate::job::{JobExecutor, JobRecord, JobSpec, JobState};
use crate::journal::{Journal, Record};
use crate::metrics::Metrics;
use crate::queue::BoundedQueue;
use crate::state::{lock, Shared};
use crate::worker::WorkerPool;
use crate::ServeConfig;
use serde::Value;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Process-wide flag flipped by the signal handler.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM/SIGINT arrived since [`install_signal_handlers`].
pub fn shutdown_requested() -> bool {
    SIGNALLED.load(Ordering::Acquire)
}

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGNALLED.store(true, Ordering::Release);
}

/// Routes SIGTERM and SIGINT to the [`shutdown_requested`] flag so the
/// serving loop can drain instead of dying mid-attempt. No `libc`
/// dependency — the two constants and `signal(2)` are declared
/// directly.
#[cfg(unix)]
pub fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Non-unix fallback: drain only via `POST /shutdown`.
#[cfg(not(unix))]
pub fn install_signal_handlers() {
    let _ = on_signal; // referenced so both cfgs compile it
}

/// A running service instance.
pub struct Server {
    shared: Arc<Shared>,
    port: u16,
    acceptor: Option<JoinHandle<()>>,
    pool: WorkerPool,
}

/// Journal replay folded into startup state: the job table, the ids to
/// re-queue, and the compacted record list to rewrite.
struct Recovered {
    jobs: HashMap<u64, JobRecord>,
    requeue: Vec<u64>,
    compacted: Vec<Record>,
    next_id: u64,
    dropped: usize,
}

fn recover(journal_path: &std::path::Path, cache: &ResultCache, metrics: &Metrics) -> Recovered {
    let replay = Journal::replay(journal_path);
    let mut jobs: HashMap<u64, JobRecord> = HashMap::new();
    let mut next_id = 0u64;
    for rec in &replay.records {
        match rec {
            Record::Accepted { id, payload, key } => {
                next_id = next_id.max(id + 1);
                jobs.insert(
                    *id,
                    JobRecord {
                        id: *id,
                        spec: JobSpec {
                            payload: payload.clone(),
                        },
                        key: key.clone(),
                        attempts: 0,
                        state: JobState::Queued,
                    },
                );
            }
            // Interrupted attempts don't count against the retry
            // budget on restart — the server dying is not the job's
            // fault — so `Started` records only matter for ordering.
            Record::Started { .. } => {}
            Record::Completed { id, key } => {
                if let Some(job) = jobs.get_mut(id) {
                    match cache.get(key) {
                        CacheRead::Hit(result) => {
                            job.state = JobState::Completed {
                                result,
                                cached: true,
                            };
                        }
                        // Entry lost or quarantined: recompute.
                        CacheRead::Miss => {}
                        CacheRead::Quarantined => {
                            crate::metrics::bump(&metrics.cache_quarantined);
                        }
                    }
                }
            }
            Record::DeadLettered { id, error } => {
                if let Some(job) = jobs.get_mut(id) {
                    job.state = JobState::DeadLettered {
                        error: error.clone(),
                    };
                }
            }
        }
    }
    let mut requeue: Vec<u64> = jobs
        .values()
        .filter(|j| !j.state.is_terminal())
        .map(|j| j.id)
        .collect();
    requeue.sort_unstable();
    let mut compacted = Vec::new();
    let mut ids: Vec<u64> = jobs.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let job = &jobs[&id];
        compacted.push(Record::Accepted {
            id,
            payload: job.spec.payload.clone(),
            key: job.key.clone(),
        });
        match &job.state {
            JobState::Completed { .. } => compacted.push(Record::Completed {
                id,
                key: job.key.clone(),
            }),
            JobState::DeadLettered { error } => compacted.push(Record::DeadLettered {
                id,
                error: error.clone(),
            }),
            _ => {}
        }
    }
    Recovered {
        jobs,
        requeue,
        compacted,
        next_id,
        dropped: replay.dropped,
    }
}

fn json_error(msg: &str) -> String {
    serde_json::to_string(&Value::Object(vec![(
        "error".to_string(),
        Value::Str(msg.to_string()),
    )]))
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".into())
}

fn handle(shared: &Arc<Shared>, req: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let body = serde_json::to_string(&Value::Object(vec![
                (
                    "status".to_string(),
                    Value::Str(
                        if shared.is_draining() {
                            "draining"
                        } else {
                            "ok"
                        }
                        .to_string(),
                    ),
                ),
                (
                    "queue_depth".to_string(),
                    Value::UInt(shared.queue.len() as u64),
                ),
            ]))
            .unwrap_or_default();
            write_response(stream, 200, &body, None)
        }
        ("GET", "/stats") => {
            let mut snap = shared.metrics.snapshot(
                shared.queue.len(),
                WorkerPool::configured_workers(shared),
                shared.is_draining(),
            );
            let (queued, running, completed, dead) = shared.job_counts();
            if let Value::Object(fields) = &mut snap {
                fields.push((
                    "jobs".to_string(),
                    Value::Object(vec![
                        ("queued".to_string(), Value::UInt(queued as u64)),
                        ("running".to_string(), Value::UInt(running as u64)),
                        ("completed".to_string(), Value::UInt(completed as u64)),
                        ("dead_lettered".to_string(), Value::UInt(dead as u64)),
                    ]),
                ));
            }
            let body = serde_json::to_string_pretty(&snap).unwrap_or_default();
            write_response(stream, 200, &body, None)
        }
        ("POST", "/jobs") => {
            if shared.is_draining() {
                return write_response(stream, 503, &json_error("draining"), None);
            }
            let parsed = match serde_json::from_str(&req.body) {
                Ok(v) => v,
                Err(e) => {
                    return write_response(
                        stream,
                        400,
                        &json_error(&format!("bad JSON body: {e}")),
                        None,
                    )
                }
            };
            let Some(items) = parsed.get("jobs").and_then(Value::as_array) else {
                return write_response(
                    stream,
                    400,
                    &json_error("body must be {\"jobs\": [payload, ...]}"),
                    None,
                );
            };
            if items.is_empty() {
                return write_response(stream, 400, &json_error("empty job batch"), None);
            }
            let specs: Vec<JobSpec> = items
                .iter()
                .map(|payload| JobSpec {
                    payload: payload.clone(),
                })
                .collect();
            match shared.admit_batch(specs) {
                Ok(admitted) => {
                    let rows: Vec<Value> = admitted
                        .iter()
                        .map(|a| {
                            Value::Object(vec![
                                ("id".to_string(), Value::UInt(a.id)),
                                ("status".to_string(), Value::Str(a.status.to_string())),
                                ("cached".to_string(), Value::Bool(a.cached)),
                            ])
                        })
                        .collect();
                    let body = serde_json::to_string(&Value::Object(vec![(
                        "jobs".to_string(),
                        Value::Array(rows),
                    )]))
                    .unwrap_or_default();
                    write_response(stream, 202, &body, None)
                }
                Err(()) => {
                    let body = serde_json::to_string(&Value::Object(vec![
                        ("error".to_string(), Value::Str("queue full".to_string())),
                        (
                            "queue_depth".to_string(),
                            Value::UInt(shared.queue.len() as u64),
                        ),
                        (
                            "capacity".to_string(),
                            Value::UInt(shared.queue.capacity() as u64),
                        ),
                    ]))
                    .unwrap_or_default();
                    write_response(stream, 429, &body, Some(1))
                }
            }
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let id = path["/jobs/".len()..].parse::<u64>().ok();
            let row = id.and_then(|id| lock(&shared.jobs).get(&id).map(JobRecord::to_value));
            match row {
                Some(v) => {
                    let body = serde_json::to_string_pretty(&v).unwrap_or_default();
                    write_response(stream, 200, &body, None)
                }
                None => write_response(stream, 404, &json_error("no such job"), None),
            }
        }
        ("POST", "/shutdown") => {
            shared.draining.store(true, Ordering::Release);
            write_response(stream, 200, "{\"status\":\"draining\"}", None)
        }
        _ => write_response(stream, 404, &json_error("no such route"), None),
    }
}

fn serve_connection(shared: Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    match read_request(&mut stream) {
        Ok(req) => {
            let _ = handle(&shared, &req, &mut stream);
        }
        Err(e) => {
            let _ = write_response(&mut stream, 400, &json_error(&e), None);
        }
    }
}

impl Server {
    /// Binds, replays the journal, compacts it, starts the worker pool
    /// and the accept loop. `addr` port 0 picks an ephemeral port.
    pub fn start(config: ServeConfig, executor: Arc<dyn JobExecutor>) -> std::io::Result<Server> {
        let cache = ResultCache::open(&config.data_dir.join("cache"))?;
        let journal_path = config.data_dir.join("journal.log");
        let metrics = Metrics::default();
        let recovered = recover(&journal_path, &cache, &metrics);
        let mut journal = Journal::open(&journal_path)?;
        journal.compact(&recovered.compacted)?;
        for _ in 0..recovered.dropped {
            crate::metrics::bump(&metrics.journal_dropped);
        }

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();

        let version = executor.version();
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            config,
            executor,
            version,
            jobs: std::sync::Mutex::new(recovered.jobs),
            next_id: AtomicU64::new(recovered.next_id),
            cache,
            journal: std::sync::Mutex::new(journal),
            metrics,
            draining: AtomicBool::new(false),
            pool_done: AtomicBool::new(false),
            running: std::sync::Mutex::new(HashMap::new()),
            retries: std::sync::Mutex::new(Vec::new()),
        });
        // Accepted-but-unfinished work survives the previous process:
        // requeue bypasses admission capacity by design.
        for id in &recovered.requeue {
            shared.queue.push_force(*id);
        }

        let pool = WorkerPool::spawn(&shared);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let shared = Arc::clone(&shared);
                            let _ = std::thread::Builder::new()
                                .name("serve-conn".into())
                                .spawn(move || serve_connection(shared, stream));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if shared.pool_done.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            shared,
            port,
            acceptor: Some(acceptor),
            pool,
        })
    }

    /// The bound port (useful with ephemeral binds).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Number of jobs re-queued from the journal at startup.
    pub fn recovered_jobs(&self) -> usize {
        // Replay happened before workers started; by the time a caller
        // asks, some may already be running — report both.
        let (queued, running, _, _) = self.shared.job_counts();
        queued + running
    }

    /// Requests a drain: stop accepting, finish in-flight attempts.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// Whether the service has been asked to drain.
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    /// Blocks until the worker pool and accept loop have exited. Call
    /// after [`Server::shutdown`] (or it blocks until one arrives over
    /// the API/a signal watcher).
    pub fn join(mut self) {
        self.pool.join();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Serves until [`shutdown_requested`] (signal) or a `POST
    /// /shutdown` flips the drain flag, then drains and returns.
    pub fn run_until_signalled(self) {
        while !shutdown_requested() && !self.is_draining() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown();
        self.join();
    }
}
