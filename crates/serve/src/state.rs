//! Shared service state and the job lifecycle transitions.
//!
//! Every transition that must survive a crash appends to the journal
//! *before* the in-memory state changes — the journal is the source of
//! truth replay rebuilds from. All locks tolerate poisoning: a panic on
//! one thread must never wedge the rest of the service.

use crate::cache::{CacheRead, ResultCache};
use crate::hash::fnv1a64;
use crate::job::{JobExecutor, JobRecord, JobSpec, JobState};
use crate::journal::{Journal, Record};
use crate::metrics::{bump, Metrics};
use crate::queue::BoundedQueue;
use crate::ServeConfig;
use serde::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Poison-tolerant lock.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A registered in-flight attempt, visible to the deadline reaper.
pub(crate) struct RunningAttempt {
    /// Cooperative cancel flag handed to the executor.
    pub cancel: Arc<AtomicBool>,
    /// When the reaper should flip the flag.
    pub deadline: Instant,
    /// Set by the reaper when it cancelled this attempt.
    pub timed_out: bool,
}

/// State shared by the listener, workers, supervisor and reaper.
pub(crate) struct Shared {
    pub config: ServeConfig,
    pub executor: Arc<dyn JobExecutor>,
    pub version: String,
    pub queue: BoundedQueue,
    pub jobs: Mutex<HashMap<u64, JobRecord>>,
    pub next_id: AtomicU64,
    pub cache: ResultCache,
    pub journal: Mutex<Journal>,
    pub metrics: Metrics,
    /// Stop accepting, finish in-flight work, exit.
    pub draining: AtomicBool,
    /// Worker pool fully stopped (set by the supervisor).
    pub pool_done: AtomicBool,
    pub running: Mutex<HashMap<u64, RunningAttempt>>,
    /// Failed attempts waiting out their backoff: `(due, id)`.
    pub retries: Mutex<Vec<(Instant, u64)>>,
}

/// Admission outcome for one job of a batch.
pub(crate) struct Admitted {
    pub id: u64,
    pub status: &'static str,
    pub cached: bool,
}

impl Shared {
    fn journal_append(&self, rec: &Record) {
        if let Err(e) = lock(&self.journal).append(rec) {
            // Journal loss degrades crash recovery, not live service.
            eprintln!("serve: journal append failed: {e}");
        }
    }

    /// Whether the service is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Admits a batch: cache hits complete immediately, the rest are
    /// queued all-or-nothing. `Err(())` = queue full (429 upstream).
    pub fn admit_batch(&self, specs: Vec<JobSpec>) -> Result<Vec<Admitted>, ()> {
        let mut jobs = lock(&self.jobs);
        let mut admitted = Vec::with_capacity(specs.len());
        let mut queued_ids = Vec::new();
        let mut new_records = Vec::new();
        for spec in specs {
            bump(&self.metrics.submitted);
            let key = spec.cache_key(&self.version);
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let (state, status, cached) = match self.cache.get(&key) {
                CacheRead::Hit(result) => {
                    bump(&self.metrics.cache_hits);
                    (
                        JobState::Completed {
                            result,
                            cached: true,
                        },
                        "completed",
                        true,
                    )
                }
                CacheRead::Quarantined => {
                    bump(&self.metrics.cache_quarantined);
                    bump(&self.metrics.cache_misses);
                    (JobState::Queued, "queued", false)
                }
                CacheRead::Miss => {
                    bump(&self.metrics.cache_misses);
                    (JobState::Queued, "queued", false)
                }
            };
            if matches!(state, JobState::Queued) {
                queued_ids.push(id);
            }
            new_records.push(JobRecord {
                id,
                spec,
                key,
                attempts: 0,
                state,
            });
            admitted.push(Admitted { id, status, cached });
        }
        if !self.queue.try_push_batch(&queued_ids) {
            bump(&self.metrics.rejected_full);
            return Err(());
        }
        for rec in new_records {
            self.journal_append(&Record::Accepted {
                id: rec.id,
                payload: rec.spec.payload.clone(),
                key: rec.key.clone(),
            });
            if let JobState::Completed { .. } = rec.state {
                self.journal_append(&Record::Completed {
                    id: rec.id,
                    key: rec.key.clone(),
                });
            } else {
                bump(&self.metrics.accepted);
            }
            jobs.insert(rec.id, rec);
        }
        Ok(admitted)
    }

    /// Marks an attempt started: journal record, state flip, reaper
    /// registration. Returns the payload and cancel flag, or `None` if
    /// the id vanished (journal corruption — skip quietly).
    pub fn start_attempt(&self, id: u64) -> Option<(Value, Arc<AtomicBool>)> {
        let mut jobs = lock(&self.jobs);
        let rec = jobs.get_mut(&id)?;
        if rec.state.is_terminal() {
            return None;
        }
        rec.attempts += 1;
        rec.state = JobState::Running;
        let attempt = rec.attempts;
        let payload = rec.spec.payload.clone();
        drop(jobs);
        self.journal_append(&Record::Started { id, attempt });
        let cancel = Arc::new(AtomicBool::new(false));
        lock(&self.running).insert(
            id,
            RunningAttempt {
                cancel: Arc::clone(&cancel),
                deadline: Instant::now() + self.config.deadline,
                timed_out: false,
            },
        );
        Some((payload, cancel))
    }

    /// Unregisters the attempt from the reaper; reports whether the
    /// reaper had cancelled it at its deadline.
    pub fn finish_attempt(&self, id: u64) -> bool {
        lock(&self.running)
            .remove(&id)
            .map(|a| a.timed_out)
            .unwrap_or(false)
    }

    /// Records a successful attempt: cache write, journal, state,
    /// latency.
    pub fn complete(&self, id: u64, result: String, latency: Duration) {
        let key = match lock(&self.jobs).get(&id) {
            Some(rec) => rec.key.clone(),
            None => return,
        };
        if let Err(e) = self.cache.put(&key, &result) {
            eprintln!("serve: cache write for job {id} failed: {e}");
        }
        self.journal_append(&Record::Completed { id, key });
        if let Some(rec) = lock(&self.jobs).get_mut(&id) {
            rec.state = JobState::Completed {
                result,
                cached: false,
            };
        }
        bump(&self.metrics.completed);
        self.metrics.record_latency(latency.as_secs_f64());
    }

    /// The capped exponential backoff (with deterministic jitter) before
    /// retry number `attempt` re-queues.
    pub fn backoff(&self, id: u64, attempt: u32) -> Duration {
        let base = self.config.backoff_base.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.config.backoff_cap);
        // Deterministic jitter: up to half the base, keyed by (id,
        // attempt) so colliding retries spread out reproducibly.
        let jitter_ns = fnv1a64(format!("{id}:{attempt}").as_bytes())
            % (base.as_nanos().max(2) as u64 / 2).max(1);
        capped + Duration::from_nanos(jitter_ns)
    }

    /// Records a failed attempt: re-queue with backoff while budget
    /// remains, otherwise dead-letter with the final diagnostic.
    pub fn fail_attempt(&self, id: u64, error: String, timed_out: bool, panicked: bool) {
        if timed_out {
            bump(&self.metrics.timeouts);
        }
        if panicked {
            bump(&self.metrics.panics);
        }
        let mut jobs = lock(&self.jobs);
        let Some(rec) = jobs.get_mut(&id) else { return };
        let attempts = rec.attempts;
        if attempts < self.config.max_attempts {
            rec.state = JobState::Queued;
            drop(jobs);
            bump(&self.metrics.retries);
            let due = Instant::now() + self.backoff(id, attempts);
            lock(&self.retries).push((due, id));
        } else {
            let diagnostic = format!("attempt {attempts}/{}: {error}", self.config.max_attempts);
            rec.state = JobState::DeadLettered {
                error: diagnostic.clone(),
            };
            drop(jobs);
            bump(&self.metrics.dead_letters);
            self.journal_append(&Record::DeadLettered {
                id,
                error: diagnostic,
            });
        }
    }

    /// Moves retry entries whose backoff expired back onto the queue.
    pub fn pump_retries(&self, now: Instant) {
        let mut due = Vec::new();
        {
            let mut retries = lock(&self.retries);
            retries.retain(|(when, id)| {
                if *when <= now {
                    due.push(*id);
                    false
                } else {
                    true
                }
            });
        }
        // Accepted work bypasses admission capacity: never drop it.
        due.sort_unstable();
        for id in due {
            self.queue.push_force(id);
        }
    }

    /// Flips cancel flags of attempts past their deadline.
    pub fn reap_deadlines(&self, now: Instant) {
        for attempt in lock(&self.running).values_mut() {
            if now >= attempt.deadline && !attempt.timed_out {
                attempt.timed_out = true;
                attempt.cancel.store(true, Ordering::Release);
            }
        }
    }

    /// Counts of jobs by state: `(queued, running, completed,
    /// dead_lettered)`.
    pub fn job_counts(&self) -> (usize, usize, usize, usize) {
        let jobs = lock(&self.jobs);
        let mut c = (0, 0, 0, 0);
        for rec in jobs.values() {
            match rec.state {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                JobState::Completed { .. } => c.2 += 1,
                JobState::DeadLettered { .. } => c.3 += 1,
            }
        }
        c
    }
}
