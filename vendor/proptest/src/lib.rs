//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use — range strategies, tuples, `any`, `Just`, `prop_map`,
//! `prop_oneof!`, `prop::collection::vec`, and the `proptest!` test
//! wrapper — backed by a deterministic per-case RNG instead of the real
//! crate's shrinking machinery. Failures report the case number; re-runs
//! are reproducible because case seeds are fixed.

pub mod test_runner {
    use rand::rngs::SmallRng;
    pub use rand::Rng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration (only `cases` is modeled).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// The deterministic generation RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// The RNG for one case of one property. The seed mixes the case
        /// index through SplitMix64 (inside `seed_from_u64`) so cases are
        /// decorrelated but fully reproducible.
        pub fn for_case(case: u32) -> Self {
            TestRng(SmallRng::seed_from_u64(0xC0FF_EE00_0000_0000 | case as u64))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// The `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! range_incl_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_incl_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($t:ident . $n:tt),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// Types with a canonical full-range strategy ([`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Weighted union of same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must sum to a positive value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick within total")
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// The canonical full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A length range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange(pub Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy generating a `Vec` of `element` values with a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (plain `assert!` here — the stub
/// has no shrinking, so there is nothing gentler to do on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` deterministic seeds (see [`test_runner::ProptestConfig`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let _ = &case;
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![
            9 => (0u8..1).prop_map(|_| true),
            1 => (0u8..1).prop_map(|_| false),
        ];
        let mut trues = 0;
        for case in 0..1000 {
            let mut rng = crate::test_runner::TestRng::for_case(case);
            if s.generate(&mut rng) {
                trues += 1;
            }
        }
        assert!(trues > 800, "got {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_values_respect_ranges(x in 10u64..20, v in prop::collection::vec(any::<u8>(), 1..8)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
        }

        #[test]
        fn tuples_and_just_compose(t in (0u8..4, Just(7u8), 0.0f64..1.0)) {
            prop_assert_eq!(t.1, 7);
            prop_assert!(t.0 < 4 && t.2 < 1.0);
        }
    }
}
