//! Offline stand-in for `criterion`.
//!
//! Benchmarks run for a fixed number of timed samples after one warm-up
//! iteration and report the mean, min and max wall-clock time per
//! iteration (plus element throughput when configured). No statistical
//! regression machinery — the numbers land on stdout so before/after
//! comparisons are made by eye or by the harness scripts.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`, once per sample, after one untimed warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(
    id: &str,
    sample_count: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        target_samples: sample_count.max(1),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    let max = *b.samples.iter().max().expect("non-empty");
    let mut line = format!(
        "{id:<50} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / secs / (1 << 20) as f64
                ));
            }
        }
    }
    println!("{line}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.default_samples, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Emits `main` running each group (ignores criterion CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: 5,
        };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert_eq!(b.samples.len(), 5);
        assert_eq!(n, 6, "warm-up plus five timed iterations");
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(100));
        group.bench_function("one", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
