//! Offline stand-in for `serde_json`: serializes the vendored `serde`
//! [`Value`] tree to JSON text, matching serde_json's pretty format
//! (2-space indent, `": "` separators, floats always with a decimal
//! point), and parses JSON text back into a [`Value`] tree
//! ([`from_str`] — the subset the job service's HTTP/JSON API needs).

pub use serde::Value;
use std::fmt;

/// Serialization error (the stub is infallible in practice; NaN and
/// infinities serialize as `null` like serde_json's lossy mode).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_into(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => float_into(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (name, item)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, name);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes a value as multi-line, 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, true);
    Ok(out)
}

/// Serializes a value as compact single-line JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, false);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return self.err("truncated \\u escape");
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                        self.pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the whole sequence through.
                    let len = if b >= 0xf0 {
                        4
                    } else if b >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return self.err("truncated utf-8 sequence");
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Float(f)),
            Err(_) => self.err("invalid number"),
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Array(items)),
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Object(fields)),
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => self.err(&format!("unexpected byte 0x{b:02x}")),
        }
    }
}

/// Parses JSON text into a [`Value`] tree. Trailing non-whitespace after
/// the first value is an error, matching serde_json's strictness.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Value::Object(vec![
            ("kernel".to_string(), Value::Str("saxpy".into())),
            ("ipc".to_string(), Value::Float(1.5)),
            ("regs".to_string(), Value::UInt(64)),
            ("neg".to_string(), Value::Int(-3)),
            ("ok".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            (
                "rows".to_string(),
                Value::Array(vec![Value::UInt(1), Value::Str("a\"b\n".into())]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_handles_numbers_and_unicode() {
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("2.5e2").unwrap(), Value::Float(250.0));
        assert_eq!(from_str("\"héllo\"").unwrap(), Value::Str("héllo".into()));
        assert_eq!(from_str("\"\\u0041\"").unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn pretty_prints_nested_rows() {
        let rows = vec![Value::Object(vec![
            ("kernel".to_string(), Value::Str("saxpy".into())),
            ("speedup".to_string(), Value::Float(1.5)),
            ("regs".to_string(), Value::UInt(64)),
        ])];
        let s = to_string_pretty(&rows).unwrap();
        assert_eq!(
            s,
            "[\n  {\n    \"kernel\": \"saxpy\",\n    \"speedup\": 1.5,\n    \"regs\": 64\n  }\n]"
        );
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        let mut s = String::new();
        float_into(&mut s, 100.0);
        assert_eq!(s, "100.0");
        let mut s = String::new();
        float_into(&mut s, 0.125);
        assert_eq!(s, "0.125");
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string(&"a\"b\\c\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn compact_mode_is_single_line() {
        let v = Value::Array(vec![Value::UInt(1), Value::Null]);
        assert_eq!(to_string(&v).unwrap(), "[1,null]");
    }
}
