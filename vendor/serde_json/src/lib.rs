//! Offline stand-in for `serde_json`: serializes the vendored `serde`
//! [`Value`] tree to JSON text, matching serde_json's pretty format
//! (2-space indent, `": "` separators, floats always with a decimal
//! point).

pub use serde::Value;
use std::fmt;

/// Serialization error (the stub is infallible in practice; NaN and
/// infinities serialize as `null` like serde_json's lossy mode).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_into(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => float_into(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (name, item)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, name);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes a value as multi-line, 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, true);
    Ok(out)
}

/// Serializes a value as compact single-line JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_rows() {
        let rows = vec![Value::Object(vec![
            ("kernel".to_string(), Value::Str("saxpy".into())),
            ("speedup".to_string(), Value::Float(1.5)),
            ("regs".to_string(), Value::UInt(64)),
        ])];
        let s = to_string_pretty(&rows).unwrap();
        assert_eq!(
            s,
            "[\n  {\n    \"kernel\": \"saxpy\",\n    \"speedup\": 1.5,\n    \"regs\": 64\n  }\n]"
        );
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        let mut s = String::new();
        float_into(&mut s, 100.0);
        assert_eq!(s, "100.0");
        let mut s = String::new();
        float_into(&mut s, 0.125);
        assert_eq!(s, "0.125");
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string(&"a\"b\\c\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn compact_mode_is_single_line() {
        let v = Value::Array(vec![Value::UInt(1), Value::Null]);
        assert_eq!(to_string(&v).unwrap(), "[1,null]");
    }
}
