//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde`'s [`Serialize`]/[`Deserialize`] traits for
//! the shapes this workspace actually uses: structs with named fields,
//! tuple structs, and enums with unit variants — no generics. The macro
//! parses the item token stream by hand (no `syn`/`quote`, which are not
//! available offline) and honors `#[serde(skip)]` on fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Item {
    /// `struct Name { a: T, b: U }`
    Named { name: String, fields: Vec<Field> },
    /// `struct Name(T, U);`
    Tuple { name: String, arity: usize },
    /// `enum Name { A, B, C }`
    Enum { name: String, variants: Vec<String> },
}

/// Consumes one attribute (`#[...]`) if the cursor is on one; returns the
/// attribute's bracketed tokens.
fn take_attr(tokens: &[TokenTree], i: &mut usize) -> Option<Vec<TokenTree>> {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '#' {
            if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    *i += 2;
                    return Some(g.stream().into_iter().collect());
                }
            }
        }
    }
    None
}

/// Whether an attribute body is `serde(... skip ...)`.
fn attr_is_serde_skip(attr: &[TokenTree]) -> bool {
    match attr.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match attr.get(1) {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let mut skip = false;
        while let Some(attr) = take_attr(body, &mut i) {
            if attr_is_serde_skip(&attr) {
                skip = true;
            }
        }
        if i >= body.len() {
            break;
        }
        skip_vis(body, &mut i);
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected field name, got {other}"),
        };
        i += 1;
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected ':' after field {name}, got {other}"),
        }
        // Skip the type: run to the next comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_arity(body: &[TokenTree]) -> usize {
    // Count top-level comma-separated fields (trailing comma tolerated).
    let mut arity = 0usize;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        arity += 1;
    }
    arity
}

fn parse_enum_variants(body: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        while take_attr(body, &mut i).is_some() {}
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, got {other}"),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                panic!("serde stub derive: enum variant {name} carries data (unsupported)")
            }
            Some(other) => {
                panic!("serde stub derive: unexpected token after variant {name}: {other}")
            }
        }
        variants.push(name);
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while take_attr(&tokens, &mut i).is_some() {}
    skip_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type {name} is unsupported");
        }
    }
    let body: Vec<TokenTree> = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect()
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = parse_tuple_arity(&g.stream().into_iter().collect::<Vec<_>>());
            return Item::Tuple { name, arity };
        }
        other => panic!("serde stub derive: expected item body for {name}, got {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Named {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_enum_variants(&body),
        },
        other => panic!("serde stub derive: unsupported item kind {other}"),
    }
}

/// Derives the vendored `serde::Serialize` (JSON value tree).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::Named { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((String::from(\"{n}\"), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Tuple { name, arity } => {
            let elems: Vec<String> = (0..arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(String::from(\"{v}\"))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse()
        .expect("serde stub derive: generated impl parses")
}

/// Derives the vendored `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Named { name, .. } | Item::Tuple { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl parses")
}
