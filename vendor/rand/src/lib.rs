//! Offline stand-in for `rand` 0.8, covering the surface this workspace
//! uses: `SmallRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm real `rand` uses for `SmallRng` on 64-bit targets — so the
//! statistical quality is comparable. Sampled values are **not**
//! bit-identical to the real crate (range sampling differs); all golden
//! values in this repository were produced with this implementation, and
//! determinism across runs and platforms is what matters here.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types drawable uniformly from a range (rand's `SampleUniform`).
pub trait SampleUniform: Sized + Copy {
    /// Draws from `lo..hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Draws from `lo..=hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (unit as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// Sampling a `T` from a half-open or inclusive range.
///
/// Blanket impls over [`SampleUniform`] (mirroring the real crate) so an
/// integer-literal range unifies with the surrounding expression's type
/// instead of defaulting to `i32`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Uniform sampling of a full-width value (rand's `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_standard(rng) as f32
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// A uniformly random value of the inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — rand 0.8's 64-bit `SmallRng` algorithm.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-4.0f64..4.0);
            assert!((-4.0..4.0).contains(&f));
            let c = rng.gen_range(b'a'..=b'f');
            assert!((b'a'..=b'f').contains(&c));
            let i = rng.gen_range(-800i64..800);
            assert!((-800..800).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 64-element shuffle leaving order intact is astronomically unlikely"
        );
    }
}
