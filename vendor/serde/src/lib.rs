//! Offline stand-in for `serde`, shaped for this workspace's needs.
//!
//! The real serde is unavailable in the build container (no network, no
//! vendored registry), and the workspace only ever serializes result rows
//! to JSON. This stub models serialization as a conversion to a [`Value`]
//! tree which the vendored `serde_json` pretty-prints; `Deserialize` is a
//! marker trait (nothing in the workspace deserializes).
//!
//! The `#[derive(Serialize, Deserialize)]` macros come from the sibling
//! `serde_derive` stub and support non-generic structs, tuple structs and
//! unit enums, plus `#[serde(skip)]` on fields.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree — the in-memory serialization target.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A double.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map (field order preserved).
    Object(Vec<(String, Value)>),
}

/// Conversion to a JSON [`Value`] — the stub's `Serialize`.
pub trait Serialize {
    /// The value tree for this datum.
    fn to_value(&self) -> Value;
}

/// Marker trait standing in for serde's `Deserialize`.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for f32 {}
impl Deserialize for f64 {}
impl Deserialize for bool {}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t),+> Deserialize for ($($t,)+) {}
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(5u32.to_value(), Value::UInt(5));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn containers_recurse() {
        let v = vec![1u64, 2].to_value();
        assert_eq!(v, Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
        let t = (1u64, "x".to_string()).to_value();
        assert_eq!(
            t,
            Value::Array(vec![Value::UInt(1), Value::Str("x".into())])
        );
    }
}
