//! Offline stand-in for `serde`, shaped for this workspace's needs.
//!
//! The real serde is unavailable in the build container (no network, no
//! vendored registry), and the workspace only ever serializes result rows
//! to JSON. This stub models serialization as a conversion to a [`Value`]
//! tree which the vendored `serde_json` pretty-prints; `Deserialize` is a
//! marker trait (nothing in the workspace deserializes).
//!
//! The `#[derive(Serialize, Deserialize)]` macros come from the sibling
//! `serde_derive` stub and support non-generic structs, tuple structs and
//! unit enums, plus `#[serde(skip)]` on fields.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree — the in-memory serialization target.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A double.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer ([`Value::UInt`], or a
    /// non-negative [`Value::Int`]).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as a double (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Conversion to a JSON [`Value`] — the stub's `Serialize`.
pub trait Serialize {
    /// The value tree for this datum.
    fn to_value(&self) -> Value;
}

/// Marker trait standing in for serde's `Deserialize`.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for f32 {}
impl Deserialize for f64 {}
impl Deserialize for bool {}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t),+> Deserialize for ($($t,)+) {}
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(5u32.to_value(), Value::UInt(5));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(3)),
            ("b".into(), Value::Str("x".into())),
            ("c".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(3));
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Value::as_array).map(|a| a.len()),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(-1).as_u64(), None);
    }

    #[test]
    fn containers_recurse() {
        let v = vec![1u64, 2].to_value();
        assert_eq!(v, Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
        let t = (1u64, "x".to_string()).to_value();
        assert_eq!(
            t,
            Value::Array(vec![Value::UInt(1), Value::Str("x".into())])
        );
    }
}
