//! Compares all three renaming schemes in the repository at a starved
//! register file — the paper's landscape in one table:
//!
//! * conventional baseline (release-on-commit, precise exceptions),
//! * the paper's physical register sharing (equal-area Table III banks,
//!   precise exceptions via shadow cells),
//! * Moudgill/Monreal-style early release (related work §VII — fast, but
//!   no precise exceptions).
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use regshare::core::{BankConfig, EarlyReleaseRenamer, Renamer, RenamerConfig};
use regshare::harness::{experiment_config, renamer_for, swept_class, Scheme, FIXED_RF};
use regshare::isa::RegClass;
use regshare::sim::Pipeline;
use regshare::stats::{geomean, Table};
use regshare::workloads::all_kernels;

fn early(rf: usize, swept: RegClass) -> Box<dyn Renamer> {
    let fixed = BankConfig::conventional(FIXED_RF);
    let swept_banks = BankConfig::conventional(rf);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (swept_banks, fixed),
        RegClass::Fp => (fixed, swept_banks),
    };
    Box::new(EarlyReleaseRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        ..RenamerConfig::baseline(rf)
    }))
}

fn main() {
    let rf = 56;
    let scale = 60_000;
    let mut table = Table::with_headers(&[
        "kernel",
        "baseline",
        "sharing (equal area)",
        "early release",
        "sharing reuse%",
    ]);
    table.numeric();
    let (mut s_share, mut s_early) = (Vec::new(), Vec::new());
    for k in all_kernels() {
        let swept = swept_class(k.suite);
        let base = {
            let mut sim = Pipeline::new(
                k.program(scale),
                renamer_for(Scheme::Baseline, rf, swept),
                experiment_config(scale),
            );
            sim.run().expect("baseline").ipc()
        };
        let (share, reuse) = {
            let mut sim = Pipeline::new(
                k.program(scale),
                renamer_for(Scheme::Proposed, rf, swept),
                experiment_config(scale),
            );
            let r = sim.run().expect("sharing");
            (r.ipc(), r.rename.reuse_fraction())
        };
        let er = {
            let mut sim =
                Pipeline::new(k.program(scale), early(rf, swept), experiment_config(scale));
            sim.run().expect("early release").ipc()
        };
        s_share.push(share / base);
        s_early.push(er / base);
        table.row(vec![
            k.name.into(),
            format!("{base:.3}"),
            format!("{share:.3} ({:+.1}%)", (share / base - 1.0) * 100.0),
            format!("{er:.3} ({:+.1}%)", (er / base - 1.0) * 100.0),
            format!("{:.1}%", reuse * 100.0),
        ]);
    }
    println!("IPC at a {rf}-register swept file ({scale} instructions per run):\n");
    print!("{table}");
    println!(
        "\ngeomean speedup: sharing {:.3}, early release {:.3}",
        geomean(&s_share),
        geomean(&s_early)
    );
    println!(
        "sharing keeps precise exceptions (shadow cells); early release does not — \
         that is the paper's core trade-off."
    );
}
