//! Quick two-speed throughput probe: detailed vs functional-warming speed.

use regshare::harness::{experiment_config, renamer_for, swept_class, Scheme};
use regshare::isa::Machine;
use regshare::sim::{FunctionalWarmer, Pipeline};
use regshare::workloads::all_kernels;
use std::time::Instant;

fn main() {
    for k in all_kernels().iter().take(4) {
        let scale = 30_000_000u64;
        let mut m = Machine::new(k.program(scale));
        let t = Instant::now();
        m.run_observe(scale, |_| {}).unwrap();
        let raw_ips = m.retired() as f64 / t.elapsed().as_secs_f64();

        let mut w = FunctionalWarmer::new(k.program(scale), &experiment_config(scale));
        w.run_until(scale).unwrap();
        let warm_ips = w.retired() as f64 / w.wall_seconds();

        let dscale = 300_000u64;
        let renamer = renamer_for(Scheme::Proposed, 64, swept_class(k.suite));
        let mut sim = Pipeline::new(k.program(dscale), renamer, experiment_config(dscale));
        let r = sim.run().unwrap();
        println!(
            "{:14} raw {:6.1}M  warm {:6.1}M  detailed {:5.2}M inst/s  ratio {:5.0}x",
            k.name,
            raw_ips / 1e6,
            warm_ips / 1e6,
            r.instructions_per_second() / 1e6,
            warm_ips / r.instructions_per_second()
        );
    }
}
