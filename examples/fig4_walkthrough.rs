//! Walks the paper's Fig. 4 example through the proposed renamer,
//! printing the physical tags each instruction receives.
//!
//! The paper's sequence (r1's chain is I1 → I4 → I5 → I6):
//!
//! ```text
//! I1: add r1 <- r2, r3
//! I2: ld  r3 <- m(x1)
//! I3: mul r2 <- r3, r4
//! I4: add r1 <- r1, r4
//! I5: mul r1 <- r1, r1
//! I6: mul r1 <- r1, r3
//! I7: add r5 <- r1, r2
//! I8: sub r2 <- r5, r1
//! ```
//!
//! Under conventional renaming these eight instructions allocate eight
//! physical registers; under the proposed scheme the chain shares one.
//! The register type predictor learns from the first pass, so the
//! sequence is renamed twice and the second pass shows the sharing.
//!
//! ```text
//! cargo run --release --example fig4_walkthrough
//! ```

use regshare::core::{BaselineRenamer, Renamer, RenamerConfig, ReuseRenamer};
use regshare::isa::{reg, Inst, Opcode};

fn sequence() -> Vec<(&'static str, Inst)> {
    vec![
        (
            "I1: add r1 <- r2, r3",
            Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3)),
        ),
        (
            "I2: ld  r3 <- m(x10)",
            Inst::load(Opcode::Ld, reg::x(3), reg::x(10), 0),
        ),
        (
            "I3: mul r2 <- r3, r4",
            Inst::rrr(Opcode::Mul, reg::x(2), reg::x(3), reg::x(4)),
        ),
        (
            "I4: add r1 <- r1, r4",
            Inst::rrr(Opcode::Add, reg::x(1), reg::x(1), reg::x(4)),
        ),
        (
            "I5: mul r1 <- r1, r1",
            Inst::rrr(Opcode::Mul, reg::x(1), reg::x(1), reg::x(1)),
        ),
        (
            "I6: mul r1 <- r1, r3",
            Inst::rrr(Opcode::Mul, reg::x(1), reg::x(1), reg::x(3)),
        ),
        (
            "I7: add r5 <- r1, r2",
            Inst::rrr(Opcode::Add, reg::x(5), reg::x(1), reg::x(2)),
        ),
        (
            "I8: sub r2 <- r5, r1",
            Inst::rrr(Opcode::Sub, reg::x(2), reg::x(5), reg::x(1)),
        ),
    ]
}

fn walk(renamer: &mut dyn Renamer, label: &str, passes: usize) {
    let mut seq = 0u64;
    for pass in 0..passes {
        let last = pass + 1 == passes;
        if last {
            println!("--- {label} ---");
        }
        let mut allocations = 0;
        for (pc, (text, inst)) in sequence().iter().enumerate() {
            let uops = renamer
                .rename(seq, pc as u64, inst)
                .expect("plenty of registers in this example");
            if last {
                let main = uops.last().expect("rename yields at least the main op");
                let srcs: Vec<String> =
                    main.srcs.iter().flatten().map(|t| format!("{t}")).collect();
                let dst = main.dst.map(|t| format!("{t}")).unwrap_or_default();
                let fresh = main.dst.map(|t| t.version == 0).unwrap_or(false);
                println!(
                    "{text}   =>  {dst:10}  <- {:24} {}",
                    srcs.join(", "),
                    if fresh { "(new register)" } else { "(reused!)" }
                );
            }
            if uops
                .last()
                .and_then(|u| u.dst)
                .map(|t| t.version == 0)
                .unwrap_or(false)
            {
                allocations += 1;
            }
            // Commit immediately: this example has no speculation.
            for u in &uops {
                seq = u.seq + 1;
            }
            for u in &uops {
                renamer.commit(u.seq);
            }
        }
        if last {
            println!("fresh physical registers this pass: {allocations} of 8\n");
        }
    }
}

fn main() {
    let mut baseline = BaselineRenamer::new(RenamerConfig::baseline(64));
    walk(&mut baseline, "conventional renaming", 1);

    let mut reuse = ReuseRenamer::new(RenamerConfig::paper(64));
    // Two training passes teach the register type predictor which
    // instructions produce single-use values; the third pass is printed.
    walk(&mut reuse, "physical register sharing (after training)", 3);

    let stats = reuse.stats();
    println!(
        "totals across all passes: {} allocations, {} reuses ({} safe, {} speculative)",
        stats.allocations, stats.reuses, stats.safe_reuses, stats.speculative_reuses
    );
}
