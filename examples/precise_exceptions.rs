//! Demonstrates precise-exception recovery with shared physical
//! registers: a page fault strikes in the middle of a register reuse
//! chain and the shadow cells restore the precise state (§IV-B of the
//! paper).
//!
//! ```text
//! cargo run --release --example precise_exceptions
//! ```

use regshare::core::{RenamerConfig, ReuseRenamer};
use regshare::harness::experiment_config;
use regshare::isa::{reg, Asm, DataBuilder, Machine};
use regshare::sim::Pipeline;

fn main() {
    // sum = Σ a[i] via a redefining chain on x3; the array's page will
    // fault on first touch.
    let mut d = DataBuilder::new(0x9000);
    let arr = d.u64_array(&[11, 22, 33, 44, 55, 66, 77, 88]);
    let out = d.zeros(8);
    let mut a = Asm::with_data(d);
    a.li(reg::x(1), arr as i64);
    a.li(reg::x(2), 8);
    a.li(reg::x(3), 0);
    let top = a.label();
    a.bind(top);
    a.ld(reg::x(4), reg::x(1), 0);
    a.add(reg::x(3), reg::x(3), reg::x(4)); // x3 chain: reuse candidates
    a.addi(reg::x(1), reg::x(1), 8);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.li(reg::x(5), out as i64);
    a.st(reg::x(3), reg::x(5), 0);
    a.halt();
    let program = a.assemble();

    let mut machine = Machine::new(program.clone());
    machine.run(1_000).expect("functional run");
    let expected = machine.memory().read_u64(out);
    println!("functional result: sum = {expected}");

    let mut config = experiment_config(10_000);
    config.check_oracle = true; // lockstep-verify every committed instruction
    config.inject_page_faults = vec![arr]; // fault on the array's first touch

    let renamer = ReuseRenamer::new(RenamerConfig::paper(64));
    let mut sim = Pipeline::new(program, Box::new(renamer), config);
    let report = sim.run().expect("oracle-checked run with a page fault");

    println!(
        "timing result:     sum = {} after {} precise exception(s)",
        sim.memory().read_u64(out),
        report.exceptions
    );
    println!(
        "recovery work:     {} shadow-cell recover commands, {} squashed micro-ops",
        report.shadow_recovers, report.rename.squashed
    );
    assert_eq!(sim.memory().read_u64(out), expected);
    assert_eq!(report.exceptions, 1);
    println!("\nprecise state was restored correctly through the shared register file");
}
