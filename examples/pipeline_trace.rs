//! Prints a classic pipeline diagram from the simulator's cycle trace:
//! one row per micro-op, one column per cycle (D=dispatch, I=issue,
//! W=writeback, C=commit).
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use regshare::core::{RenamerConfig, ReuseRenamer};
use regshare::isa::{reg, Asm};
use regshare::sim::{Pipeline, SimConfig, TraceStage};
use std::collections::BTreeMap;

fn main() {
    // A short dependent sequence with a reuse chain and a load.
    let mut a = Asm::new();
    a.li(reg::x(1), 0x4000);
    a.li(reg::x(2), 21);
    a.st(reg::x(2), reg::x(1), 0);
    a.ld(reg::x(3), reg::x(1), 0);
    a.add(reg::x(3), reg::x(3), reg::x(3)); // redefining chain on x3
    a.addi(reg::x(3), reg::x(3), 1);
    a.mul(reg::x(4), reg::x(3), reg::x(2));
    a.halt();
    let program = a.assemble();
    let listing: Vec<String> = program.insts().iter().map(|i| format!("{i}")).collect();

    let config = SimConfig {
        trace: true,
        check_oracle: true,
        ..SimConfig::default()
    };
    let renamer = ReuseRenamer::new(RenamerConfig::paper(64));
    let mut sim = Pipeline::new(program, Box::new(renamer), config);
    let report = sim.run().expect("traced run");
    let trace = sim.take_trace();

    // Group events per micro-op; drop the leading idle cycles (the cold
    // I-cache miss) so the diagram starts where the action is.
    let mut rows: BTreeMap<u64, (u64, Vec<(u64, char)>)> = BTreeMap::new();
    let mut max_cycle = 0;
    let min_cycle = trace.iter().map(|e| e.cycle).min().unwrap_or(0);
    for e in &trace {
        let c = match e.stage {
            TraceStage::Dispatch => 'D',
            TraceStage::Issue => 'I',
            TraceStage::Writeback => 'W',
            TraceStage::Commit => 'C',
        };
        let cycle = e.cycle - min_cycle;
        rows.entry(e.seq)
            .or_insert((e.pc, Vec::new()))
            .1
            .push((cycle, c));
        max_cycle = max_cycle.max(cycle);
    }

    let mut tens = String::new();
    let mut ones = String::new();
    for c in 0..=max_cycle {
        tens.push_str(&((c / 10) % 10).to_string());
        ones.push_str(&(c % 10).to_string());
    }
    println!("{:31}{tens}", format!("cycle (from {min_cycle}):"));
    println!("{:31}{ones}", "");
    for (seq, (pc, events)) in rows {
        let mut lane = vec![' '; (max_cycle + 1) as usize];
        for (cycle, c) in events {
            lane[cycle as usize] = c;
        }
        let lane: String = lane.into_iter().collect();
        println!(
            "seq {seq:>2} {:24} {}",
            listing.get(pc as usize).map(String::as_str).unwrap_or("?"),
            lane.trim_end()
        );
    }
    println!(
        "\n{} instructions in {} cycles (IPC {:.2}); D=dispatch I=issue W=writeback C=commit",
        report.committed_instructions,
        report.cycles,
        report.ipc()
    );
}
