//! Write your own TRISC kernel, check it against the functional
//! reference machine, then sweep it across register-file sizes under both
//! renaming schemes.
//!
//! The kernel: a dot product with a Horner-style correction polynomial —
//! heavy on single-use fma chains, the proposed scheme's best case.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use regshare::core::{BaselineRenamer, RenamerConfig, ReuseRenamer};
use regshare::harness::experiment_config;
use regshare::isa::{reg, Asm, DataBuilder, Machine, Program};
use regshare::sim::Pipeline;

fn build(n: usize) -> (Program, u64) {
    let mut rng_state = 0x243F_6A88u64; // deterministic "random" data
    let mut next = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    let mut d = DataBuilder::new(0x1_0000);
    let xs: Vec<f64> = (0..n).map(|_| next()).collect();
    let ys: Vec<f64> = (0..n).map(|_| next()).collect();
    let xa = d.f64_array(&xs) as i64;
    let ya = d.f64_array(&ys) as i64;
    let out = d.zeros(8);

    let mut a = Asm::with_data(d);
    a.li(reg::x(1), xa);
    a.li(reg::x(2), ya);
    a.li(reg::x(3), n as i64);
    a.fli(reg::f(0), 0.0); // accumulator
    a.fli(reg::f(10), 0.125); // polynomial coefficients
    a.fli(reg::f(11), -0.5);
    a.fli(reg::f(12), 1.0);
    let top = a.label();
    a.bind(top);
    a.fld(reg::f(1), reg::x(1), 0);
    a.fld(reg::f(2), reg::x(2), 0);
    // t = x*y, then a short Horner chain: c = ((t*\u{2158}+\u{2212}\u{00bd})*t+1)
    a.fmul(reg::f(3), reg::f(1), reg::f(2));
    a.fma(reg::f(4), reg::f(3), reg::f(10), reg::f(11));
    a.fma(reg::f(4), reg::f(4), reg::f(3), reg::f(12));
    a.fma(reg::f(0), reg::f(3), reg::f(4), reg::f(0));
    a.addi(reg::x(1), reg::x(1), 8);
    a.addi(reg::x(2), reg::x(2), 8);
    a.subi(reg::x(3), reg::x(3), 1);
    a.bne(reg::x(3), reg::zero(), top);
    a.li(reg::x(4), out as i64);
    a.fst(reg::f(0), reg::x(4), 0);
    a.halt();
    (a.assemble(), out)
}

fn main() {
    let (program, out_addr) = build(4096);

    // First: trust but verify on the functional reference machine.
    let mut machine = Machine::new(program.clone());
    machine.run(10_000_000).expect("kernel executes cleanly");
    let expected = machine.memory().read_f64(out_addr);
    println!(
        "functional result: {expected:.6} ({} instructions)\n",
        machine.retired()
    );

    println!(
        "{:>6} {:>12} {:>12} {:>9} {:>8}",
        "regs", "baseline IPC", "proposed IPC", "speedup", "reuse%"
    );
    for regs in [48usize, 64, 80, 112] {
        let scale = 60_000;
        let mut base = Pipeline::new(
            program.clone(),
            Box::new(BaselineRenamer::new(RenamerConfig::baseline(regs))),
            experiment_config(scale),
        );
        let b = base.run().expect("baseline run");
        let mut prop = Pipeline::new(
            program.clone(),
            Box::new(ReuseRenamer::new(RenamerConfig::paper(regs))),
            experiment_config(scale),
        );
        let p = prop.run().expect("proposed run");
        println!(
            "{regs:>6} {:>12.3} {:>12.3} {:>9.3} {:>7.1}%",
            b.ipc(),
            p.ipc(),
            p.ipc() / b.ipc(),
            p.rename.reuse_fraction() * 100.0
        );
        // The timing simulator must compute the same answer.
        assert_eq!(prop.memory().read_f64(out_addr), expected);
        assert_eq!(base.memory().read_f64(out_addr), expected);
    }
    println!("\nboth schemes reproduced the functional result exactly");
}
