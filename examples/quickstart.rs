//! Quickstart: run one benchmark kernel under both renaming schemes and
//! compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use regshare::harness::{run_kernel, Scheme};
use regshare::workloads::all_kernels;

fn main() {
    let kernels = all_kernels();
    let kernel = kernels
        .iter()
        .find(|k| k.name == "gmm")
        .expect("gmm kernel exists");
    let regs = 48; // baseline-equivalent register file size
    let scale = 100_000; // committed instructions to simulate

    println!(
        "kernel: {} ({} suite), {} registers\n",
        kernel.name, kernel.suite, regs
    );

    let base = run_kernel(kernel, Scheme::Baseline, regs, scale);
    println!("--- conventional renaming ---\n{base}\n");

    let prop = run_kernel(kernel, Scheme::Proposed, regs, scale);
    println!("--- physical register sharing (equal area) ---\n{prop}\n");

    println!(
        "speedup: {:.3}x  (reuse avoided {:.1}% of allocations)",
        prop.ipc() / base.ipc(),
        prop.rename.reuse_fraction() * 100.0
    );
}
