#!/usr/bin/env sh
# Module-size guard: no .rs file under crates/ may exceed MAX_LINES.
#
# The pipeline monolith was split into per-stage modules precisely so no
# single file re-accretes every mechanism; this gate keeps it that way.
# Files that predate the split and are still awaiting their own
# decomposition go in ALLOWLIST (one path per line, relative to the repo
# root) — shrink it, never grow it.
set -eu

MAX_LINES=900
ALLOWLIST="
"

cd "$(dirname "$0")/.."
status=0
for f in $(find crates -name '*.rs' | sort); do
    lines=$(wc -l <"$f")
    if [ "$lines" -gt "$MAX_LINES" ]; then
        case "$ALLOWLIST" in
            *"$f"*)
                echo "allowlisted (still to split): $f ($lines lines)"
                ;;
            *)
                echo "FAIL: $f has $lines lines (max $MAX_LINES)" >&2
                status=1
                ;;
        esac
    fi
done
exit $status
