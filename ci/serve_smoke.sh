#!/usr/bin/env sh
# End-to-end smoke test for the job service (`experiments serve` /
# `experiments submit`):
#
#   1. start the service on an ephemeral port,
#   2. submit the same sweep twice — the second pass must be answered
#      >=90% from the verified result cache,
#   3. SIGTERM the service mid-batch, restart it, and require the
#      journal replay to finish the interrupted remainder.
#
# Every submit pass also byte-compares served results against direct
# in-process runs (that check lives in the `submit` subcommand itself).
set -eu

cd "$(dirname "$0")/.."

BIN=target/release/experiments
KERNELS=saxpy,fft,dct
SCALE=4000

STATE=$(mktemp -d)
OUT=$(mktemp -d)
LOG="$STATE/serve.log"
SERVE_PID=""

fail() {
    echo "FAIL: $1" >&2
    [ -s "$LOG" ] && { echo "--- serve log ---" >&2; cat "$LOG" >&2; }
    exit 1
}

cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$STATE" "$OUT"
}
trap cleanup EXIT INT TERM

cargo build --release --bin experiments

start_serve() {
    "$BIN" serve --port 0 --data-dir "$STATE/service" --workers 2 \
        >"$LOG" 2>&1 &
    SERVE_PID=$!
    # The service prints its ephemeral port on startup; wait for it.
    PORT=""
    i=0
    while [ $i -lt 100 ]; do
        PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
            "$LOG" | head -n 1)
        [ -n "$PORT" ] && return 0
        kill -0 "$SERVE_PID" 2>/dev/null || fail "service exited at startup"
        i=$((i + 1))
        sleep 0.1
    done
    fail "service never reported its port"
}

stats() {
    curl -sf "http://127.0.0.1:$PORT/stats"
}

# --- 1. cold pass: everything computed --------------------------------
start_serve
"$BIN" submit --port "$PORT" --kernels "$KERNELS" --scale "$SCALE" \
    --out "$OUT/pass1" || fail "first submit pass"

# --- 2. warm pass: >=90% served from the verified cache ----------------
"$BIN" submit --port "$PORT" --kernels "$KERNELS" --scale "$SCALE" \
    --out "$OUT/pass2" || fail "second submit pass"
total=$(grep -c '"cached":' "$OUT/pass2/submit.json")
hits=$(grep -c '"cached": true' "$OUT/pass2/submit.json" || true)
[ "$total" -gt 0 ] || fail "no rows in second-pass summary"
[ $((hits * 100)) -ge $((total * 90)) ] || \
    fail "second pass hit cache on $hits of $total jobs (<90%)"
echo "smoke: warm pass served $hits/$total jobs from cache"

# --- 3. SIGTERM mid-batch; replay finishes the remainder ---------------
# A big slow batch keeps the queue occupied while the signal lands.
"$BIN" submit --port "$PORT" --scale 60000 --out "$OUT/pass3" \
    >"$OUT/bg-submit.log" 2>&1 &
SUBMIT_PID=$!
sleep 1
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
wait "$SUBMIT_PID" 2>/dev/null || true  # client fails once the listener dies

start_serve
recovered=$(sed -n 's/.*recovered \([0-9][0-9]*\) journaled job(s).*/\1/p' \
    "$LOG" | head -n 1)
[ -n "$recovered" ] || fail "restart did not report journal recovery"
[ "$recovered" -gt 0 ] || fail "no jobs recovered from the journal"
echo "smoke: restart replayed $recovered journaled job(s)"

# The replayed remainder must drain to zero pending work.
i=0
while [ $i -lt 600 ]; do
    pending=$(stats | python3 -c \
        'import json,sys; j=json.load(sys.stdin)["jobs"]; print(j["queued"]+j["running"])' \
        2>/dev/null || echo "")
    if [ "$pending" = "0" ]; then
        echo "smoke: replayed remainder drained"
        exit 0
    fi
    i=$((i + 1))
    sleep 0.5
done
fail "replayed jobs never drained"
