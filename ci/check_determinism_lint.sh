#!/usr/bin/env sh
# Determinism guard: the simulation crates promise bit-identical results
# across runs, so the constructs that smuggle nondeterminism in are
# banned at the source level:
#
#   * std HashMap/HashSet (randomized SipHash seeds perturb iteration
#     order) — use stats::FastHashMap / FastHashSet instead,
#   * Instant::now (wall clock) — only the two-speed engine's
#     throughput reports may read it, marked `det-lint: allow`,
#   * thread_rng / OS randomness — all stochastic inputs must flow from
#     an explicitly seeded generator.
#
# A line may opt out with a trailing `// det-lint: allow <reason>`
# comment; reviewers see the reason in the diff. Test modules are
# exempt (nondeterministic iteration in a test harness can't leak into
# simulation results).
set -eu

CRATES="crates/sim/src crates/core/src crates/mem/src"

cd "$(dirname "$0")/.."
status=0

scan() {
    pattern="$1"
    label="$2"
    # Strip the sanctioned spellings, then flag what is left. Lines
    # carrying the explicit allow marker or inside test files pass.
    for f in $(find $CRATES -name '*.rs' | sort); do
        in_tests=0
        n=0
        while IFS= read -r line || [ -n "$line" ]; do
            n=$((n + 1))
            case "$line" in
                *'#[cfg(test)]'*) in_tests=1 ;;
            esac
            [ "$in_tests" -eq 1 ] && continue
            case "$line" in
                *'det-lint: allow'*) continue ;;
            esac
            stripped=$(printf '%s\n' "$line" | sed 's/FastHashMap//g; s/FastHashSet//g')
            if printf '%s\n' "$stripped" | grep -qE "$pattern"; then
                echo "FAIL: $f:$n: $label" >&2
                echo "      $line" >&2
                status=1
            fi
        done <"$f"
    done
}

scan '\bHashMap\b|\bHashSet\b' "randomized-hasher collection (use FastHashMap/FastHashSet)"
scan 'Instant::now' "wall-clock read in a simulation crate (mark 'det-lint: allow' if it only feeds a throughput report)"
scan '\bthread_rng\b|\brandom\(\)' "unseeded randomness in a simulation crate"

# The stage tick paths additionally promise zero steady-state heap
# allocation (tests/zero_alloc.rs): growable collections there must be
# born with their capacity, so an unsized constructor is a lint error.
CRATES="crates/sim/src/stages"
scan '\bVec::new\b|\bVecDeque::new\b' "unsized collection in a stage tick path (use with_capacity / a fixed ring)"

if [ "$status" -eq 0 ]; then
    echo "determinism lint: clean"
fi
exit $status
