#!/usr/bin/env sh
# Perf regression gate: detailed-mode throughput must stay within
# tolerance of the committed baseline.
#
# Runs `experiments bench` at a fixed small scale (the detailed-mode
# instruction budget saturates at 200k, matching the committed
# baseline's budget) and compares the aggregate detailed-mode
# uops/sec against `results/BENCH_sample.json`. A drop of more than
# BENCH_TOLERANCE (default 10%) fails the gate.
#
# The committed number is machine-dependent: it was measured on the
# machine that produced the checked-in results. On substantially
# slower hardware, override the tolerance, e.g.
#     BENCH_TOLERANCE=0.5 ci/check_bench.sh
# Local throughput swings (thermal, contention) are why the default
# tolerance is as loose as 10% — this gate catches structural
# regressions (an accidental O(n) scan, a hot-path allocation), not
# single-digit noise.
set -eu

cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-200000}"
TOLERANCE="${BENCH_TOLERANCE:-0.10}"
BASELINE="results/BENCH_sample.json"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

if [ ! -f "$BASELINE" ]; then
    echo "check_bench: missing committed baseline $BASELINE" >&2
    exit 1
fi

cargo build --release --quiet
./target/release/experiments bench --scale "$SCALE" --out "$OUT" >/dev/null

python3 - "$BASELINE" "$OUT/BENCH_sample.json" "$TOLERANCE" <<'EOF'
import json
import sys

baseline_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
baseline = json.load(open(baseline_path))["aggregate_detailed_uops_per_sec"]
fresh = json.load(open(fresh_path))["aggregate_detailed_uops_per_sec"]
floor = baseline * (1.0 - tolerance)
verdict = "OK" if fresh >= floor else "FAIL"
print(
    f"check_bench: baseline {baseline:,.0f} uops/s, fresh {fresh:,.0f} uops/s "
    f"({fresh / baseline:.2f}x), floor {floor:,.0f} ({tolerance:.0%} tolerance): {verdict}"
)
sys.exit(0 if fresh >= floor else 1)
EOF
